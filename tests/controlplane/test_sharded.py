"""Golden equivalence + pool machinery for the sharded solver.

The acceptance bar: running the full control stack through a
`ControlPool` — DP builds fanned across 1, 2, or 4 worker processes,
reaction-plan walks sharded the same way — reproduces the frozen
pre-refactor golden fixtures bit for bit.
"""

import warnings

import numpy as np
import pytest

from repro.controlplane.pathcontrol import _dp_layers
from repro.controlplane.reactionplan import generate_reaction_plans, route_walk
from repro.controlplane.sharded import ControlPool, _shard_bounds
from repro.controlplane.pathcontrol import path_control
from tests.controlplane.golden_workloads import (WORKLOADS, control_digest,
                                                 load_fixture)


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def scenario(request):
    name = request.param
    return name, WORKLOADS[name](), load_fixture(name)


def _random_weights(n=37, seed=0, density=0.8):
    rng = np.random.default_rng(seed)
    w = rng.uniform(1.0, 400.0, size=(n, n))
    w[rng.random((n, n)) > density] = np.inf
    np.fill_diagonal(w, np.inf)
    return w


def _assert_dp_equal(got, ref):
    dist_g, vias_g, imp_g = got
    dist_r, vias_r, imp_r = ref
    assert dist_g.tobytes() == dist_r.tobytes()
    assert len(vias_g) == len(vias_r)
    for a, b in zip(vias_g, vias_r):
        assert a.tobytes() == b.tobytes()
    for a, b in zip(imp_g, imp_r):
        assert a.tobytes() == b.tobytes()


class TestShardBounds:
    def test_covers_rows_in_order(self):
        for n in (1, 2, 7, 16, 200):
            for shards in (1, 2, 3, 4, 7):
                bounds = _shard_bounds(n, shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == n
                for (a, b), (c, d) in zip(bounds[:-1], bounds[1:]):
                    assert b == c and a < b and c < d

    def test_matches_array_split(self):
        rows = np.arange(23)
        bounds = _shard_bounds(23, 4)
        for part, (lo, hi) in zip(np.array_split(rows, 4), bounds):
            assert part.tolist() == list(range(lo, hi))

    def test_never_more_shards_than_rows(self):
        assert _shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]


class TestShardedDp:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_monolithic(self, workers):
        w = _random_weights()
        ref = _dp_layers(w, 2)
        with ControlPool(workers, min_shard_rows=1) as pool:
            _assert_dp_equal(pool.dp_fn(w, 2), ref)

    def test_small_problems_stay_in_process(self):
        w = _random_weights(n=8)
        pool = ControlPool(2, min_shard_rows=32)
        try:
            _assert_dp_equal(pool.dp_fn(w, 2), _dp_layers(w, 2))
            assert pool._executor is None  # never forked
        finally:
            pool.close()

    def test_closed_pool_solves_in_process(self):
        w = _random_weights()
        pool = ControlPool(2, min_shard_rows=1)
        pool.close()
        pool.close()  # idempotent
        _assert_dp_equal(pool.dp_fn(w, 2), _dp_layers(w, 2))


class _BrokenExecutor:
    def submit(self, *args, **kwargs):
        raise RuntimeError("worker pool on fire")

    def shutdown(self, **kwargs):
        pass


class TestDegradation:
    def test_failure_warns_once_and_stays_correct(self):
        w = _random_weights()
        pool = ControlPool(2, min_shard_rows=1)
        pool._executor = _BrokenExecutor()
        with pytest.warns(RuntimeWarning, match="falling back"):
            _assert_dp_equal(pool.dp_fn(w, 2), _dp_layers(w, 2))
        assert pool._broken
        # Degradation is permanent and silent from here on.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _assert_dp_equal(pool.dp_fn(w, 2), _dp_layers(w, 2))
        pool.close()


class TestGoldenEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_stack_matches_reference(self, scenario, workers):
        """Full control stack through the pool == frozen golden fixture."""
        name, wl, reference = scenario
        with ControlPool(workers, min_shard_rows=1) as pool:
            digest = control_digest(wl, wl.underlay.snapshot(wl.now),
                                    context=pool.solve_context(),
                                    walks_fn=pool.reaction_walks)
        assert digest == reference, f"{name} diverged with {workers} workers"


class TestShardedWalks:
    def test_walks_match_in_process_route_walks(self, scenario):
        name, wl, __ = scenario
        snap = wl.underlay.snapshot(wl.now)
        r_cur = path_control(wl.streams, wl.codes, snap, wl.config,
                             gateways=wl.gateways, fees=wl.fees)
        with ControlPool(2, min_shard_rows=1) as pool:
            walks = pool.reaction_walks(r_cur, snap,
                                        wl.config.loss_ms_penalty)
        routes = {a.path.regions for a in r_cur.assignments}
        assert set(walks) == routes
        for route, rec_plan in walks.items():
            assert rec_plan == route_walk(route, snap,
                                          wl.config.loss_ms_penalty)
        # Seeding generate_reaction_plans with them changes nothing.
        assert (generate_reaction_plans(r_cur, snap,
                                        wl.config.loss_ms_penalty,
                                        walks=dict(walks))
                == generate_reaction_plans(r_cur, snap,
                                           wl.config.loss_ms_penalty))
