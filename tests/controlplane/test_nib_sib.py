"""Tests for the network and stream information bases."""

import pytest

from repro.controlplane.nib import LinkReport, NetworkInformationBase
from repro.controlplane.sib import StreamInformationBase
from repro.traffic.matrix import TrafficMatrix
from repro.underlay.linkstate import LinkType


def _report(src="A", dst="B", lt=LinkType.INTERNET, lat=100.0, loss=0.01,
            t=0.0):
    return LinkReport(src, dst, lt, lat, loss, t)


class TestLinkReport:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            _report(lat=-1.0)

    def test_rejects_loss_out_of_range(self):
        with pytest.raises(ValueError):
            _report(loss=1.5)


class TestNIB:
    def test_update_and_get(self):
        nib = NetworkInformationBase()
        nib.update(_report())
        assert nib.latency_ms("A", "B", LinkType.INTERNET) == 100.0
        assert nib.loss_rate("A", "B", LinkType.INTERNET) == 0.01

    def test_directions_are_distinct(self):
        nib = NetworkInformationBase()
        nib.update(_report("A", "B", lat=100.0))
        nib.update(_report("B", "A", lat=250.0))
        assert nib.latency_ms("A", "B", LinkType.INTERNET) == 100.0
        assert nib.latency_ms("B", "A", LinkType.INTERNET) == 250.0

    def test_types_are_distinct(self):
        nib = NetworkInformationBase()
        nib.update(_report(lt=LinkType.INTERNET, lat=100.0))
        nib.update(_report(lt=LinkType.PREMIUM, lat=80.0))
        assert nib.latency_ms("A", "B", LinkType.PREMIUM) == 80.0

    def test_newest_report_wins(self):
        nib = NetworkInformationBase()
        nib.update(_report(lat=100.0, t=10.0))
        nib.update(_report(lat=200.0, t=5.0))  # older: ignored
        assert nib.latency_ms("A", "B", LinkType.INTERNET) == 100.0
        nib.update(_report(lat=300.0, t=20.0))
        assert nib.latency_ms("A", "B", LinkType.INTERNET) == 300.0

    def test_missing_link_raises(self):
        nib = NetworkInformationBase()
        with pytest.raises(KeyError):
            nib.latency_ms("A", "B", LinkType.INTERNET)
        assert nib.get("A", "B", LinkType.INTERNET) is None

    def test_stale_links(self):
        nib = NetworkInformationBase(max_staleness_s=30.0)
        nib.update(_report(t=0.0))
        assert nib.stale_links(now=10.0) == []
        assert nib.stale_links(now=100.0) == [("A", "B", LinkType.INTERNET)]

    def test_snapshot_is_a_copy(self):
        nib = NetworkInformationBase()
        nib.update(_report())
        snap = nib.snapshot()
        nib.update(_report(lat=999.0, t=99.0))
        key = ("A", "B", LinkType.INTERNET)
        assert snap[key].latency_ms == 100.0

    def test_update_many_and_len(self):
        nib = NetworkInformationBase()
        nib.update_many([_report(), _report("B", "A")])
        assert len(nib) == 2


class TestSIB:
    def _matrix(self, demand=10.0):
        return TrafficMatrix(["A", "B"], {("A", "B"): demand,
                                          ("B", "A"): demand / 2})

    def test_record_and_predict(self):
        sib = StreamInformationBase(["A", "B"], min_history=1)
        sib.record_epoch(self._matrix(10.0))
        predicted = sib.predicted_matrix()
        # Persistence-with-safety until the DTFT has enough history.
        assert predicted.get("A", "B") >= 10.0

    def test_predict_before_any_record_raises(self):
        sib = StreamInformationBase(["A", "B"])
        with pytest.raises(RuntimeError):
            sib.predicted_matrix()

    def test_unknown_pair_rejected(self):
        sib = StreamInformationBase(["A", "B"])
        bad = TrafficMatrix(["A", "B", "C"], {("A", "C"): 1.0})
        with pytest.raises(KeyError):
            sib.record_epoch(bad)

    def test_streams_stored(self):
        from repro.traffic.streams import Stream, VIDEO_PROFILES
        sib = StreamInformationBase(["A", "B"])
        streams = [Stream(1, "A", "B", 5.0, VIDEO_PROFILES[0])]
        sib.record_epoch(self._matrix(), streams)
        assert len(sib.streams) == 1
        assert sib.last_matrix is not None

    def test_predictor_accessor(self):
        sib = StreamInformationBase(["A", "B"])
        assert sib.predictor("A", "B") is not sib.predictor("B", "A")
