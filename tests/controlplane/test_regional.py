"""Tests for the per-partition degraded-mode sub-controllers."""

import pytest

from repro.controlplane.model import ControlConfig
from repro.controlplane.nib import LinkReport
from repro.controlplane.regional import (REGIONAL_STREAM_BASE,
                                         RegionalControlConfig,
                                         RegionalController, regional_control)
from repro.traffic.matrix import TrafficMatrix
from repro.underlay.linkstate import LinkType

CODES = ("HGH", "SIN")


def _reports(codes, t=0.0):
    reports = []
    for a in codes:
        for b in codes:
            if a == b:
                continue
            reports.append(LinkReport(a, b, LinkType.INTERNET, 100.0,
                                      0.001, t))
            reports.append(LinkReport(a, b, LinkType.PREMIUM, 80.0,
                                      0.00001, t))
    return reports


def _sub(regions=CODES, base_version=3, seed=23, nib_reports=None):
    return RegionalController(
        regions,
        control_config=ControlConfig(container_capacity_mbps=100.0),
        pricing=None, sib_params={"min_history": 4, "refit_every": 2},
        base_version=base_version, config=regional_control(),
        seed=seed, nib_reports=nib_reports)


class TestConfig:
    def test_disabled_by_default(self):
        assert not RegionalControlConfig().enabled

    def test_convenience_constructor_arms(self):
        config = regional_control()
        assert config.enabled
        assert config.stream_id_base == REGIONAL_STREAM_BASE

    def test_stream_id_base_must_be_positive(self):
        with pytest.raises(ValueError):
            RegionalControlConfig(enabled=True, stream_id_base=0)


class TestController:
    def test_regions_sorted_and_unique(self):
        sub = _sub(("SIN", "HGH"))
        sub.close()
        assert sub.regions == ("HGH", "SIN")
        with pytest.raises(ValueError, match="repeats"):
            _sub(("HGH", "HGH"))

    def test_versions_allocated_strictly_above_base(self):
        sub = _sub(base_version=7)
        try:
            assert sub.version_high == 7
            assert sub.next_version() == 8
            assert sub.next_version() == 9
            assert sub.version_high == 9
        finally:
            sub.close()

    def test_covers_and_matrix_restriction(self):
        sub = _sub()
        try:
            assert sub.covers("HGH") and not sub.covers("FRA")
            matrix = TrafficMatrix(
                ["HGH", "SIN", "FRA"],
                {("HGH", "SIN"): 10.0, ("HGH", "FRA"): 20.0,
                 ("FRA", "SIN"): 30.0})
            cut = sub.restrict_matrix(matrix)
            assert dict(cut.items()) == {("HGH", "SIN"): 10.0}
        finally:
            sub.close()

    def test_nib_seed_filters_to_intra_partition_links(self):
        from repro.controlplane.nib import NetworkInformationBase

        nib = NetworkInformationBase()
        nib.update_many(_reports(("HGH", "SIN", "FRA")))
        sub = _sub(nib_reports=nib.export_reports())
        try:
            docs = sub.controller.nib.export_reports()
            assert docs
            for doc in docs:
                assert {doc["src"], doc["dst"]} <= set(CODES)
        finally:
            sub.close()

    def test_epoch_allocates_regional_band_stream_ids(self):
        sub = _sub()
        try:
            sub.ingest_reports(_reports(CODES))
            matrix = TrafficMatrix(list(CODES), {("HGH", "SIN"): 10.0,
                                                 ("SIN", "HGH"): 10.0})
            output = sub.run_epoch(0.0, matrix, {c: 4 for c in CODES})
            assert output.path_result.assignments
            for a in output.path_result.assignments:
                assert a.stream.stream_id >= REGIONAL_STREAM_BASE
            assert sub.epochs_run == 1
        finally:
            sub.close()

    def test_ingest_drops_reports_crossing_the_edge(self):
        sub = _sub()
        try:
            sub.ingest_reports(_reports(("HGH", "SIN", "FRA")))
            for doc in sub.controller.nib.export_reports():
                assert {doc["src"], doc["dst"]} <= set(CODES)
        finally:
            sub.close()

    def test_sub_seed_is_deterministic_across_processes(self):
        """The sub-controller seed derives from CRC, not `hash()` — the
        same (seed, region set) must yield the same controller seed in
        every process."""
        a, b = _sub(seed=23), _sub(seed=23)
        try:
            assert a.sub_seed == b.sub_seed
        finally:
            a.close()
            b.close()
        other = _sub(("FRA", "HGH"), seed=23)
        try:
            assert other.sub_seed != a.sub_seed
        finally:
            other.close()
