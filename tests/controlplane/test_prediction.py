"""Tests for the DTFT demand predictor."""

import numpy as np
import pytest

from repro.controlplane.prediction import DTFTPredictor, RollingPredictor


def _periodic(n_days=4, slot_s=300.0):
    t = np.arange(0, n_days * 86400.0, slot_s)
    h = (t / 3600.0) % 24.0
    return 100.0 + 80.0 * np.exp(-0.5 * ((h - 14.0) / 2.5) ** 2)


class TestDTFTPredictor:
    def test_rejects_bad_harmonics(self):
        with pytest.raises(ValueError):
            DTFTPredictor(0)

    def test_rejects_short_history(self):
        with pytest.raises(ValueError):
            DTFTPredictor().fit([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            DTFTPredictor().fit([1.0, float("nan"), 2.0, 3.0])

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            DTFTPredictor().reconstruct([0])

    def test_reconstruction_matches_history(self):
        series = _periodic(2)
        p = DTFTPredictor(100).fit(series)
        recon = p.reconstruct(np.arange(series.size))
        err = np.abs(recon - series) / series.max()
        assert err.mean() < 0.03

    def test_extrapolation_tracks_periodic_signal(self):
        series = _periodic(4)
        day = int(86400 / 300)
        p = DTFTPredictor(100).fit(series[:3 * day])
        pred = p.predict(day)
        err = np.abs(pred - series[3 * day:]) / series.max()
        assert err.mean() < 0.05

    def test_predictions_non_negative(self):
        rng = np.random.default_rng(0)
        noisy = np.abs(rng.normal(1.0, 2.0, 512))
        p = DTFTPredictor(20).fit(noisy)
        assert np.all(p.predict(64) >= 0.0)

    def test_predict_requires_positive_steps(self):
        p = DTFTPredictor(10).fit(_periodic(1))
        with pytest.raises(ValueError):
            p.predict(0)

    def test_keeps_dc_component(self):
        constant = np.full(512, 42.0)
        p = DTFTPredictor(5).fit(constant)
        np.testing.assert_allclose(p.predict(10), 42.0, rtol=1e-6)

    def test_fewer_harmonics_than_requested_ok(self):
        p = DTFTPredictor(10_000).fit(_periodic(1))
        assert p.fitted

    def test_harmonic_count_controls_detail(self):
        series = _periodic(2)
        coarse = DTFTPredictor(3).fit(series).reconstruct(
            np.arange(series.size))
        fine = DTFTPredictor(100).fit(series).reconstruct(
            np.arange(series.size))
        err_coarse = np.abs(coarse - series).mean()
        err_fine = np.abs(fine - series).mean()
        assert err_fine < err_coarse


class TestRollingPredictor:
    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            RollingPredictor().observe(-1.0)

    def test_persistence_before_history(self):
        r = RollingPredictor(min_history=1000)
        r.observe(50.0)
        assert r.predict_next() == pytest.approx(55.0)  # last x 1.1

    def test_production_rule_floor_at_last_actual(self):
        series = _periodic(3)
        r = RollingPredictor(min_history=144)
        for v in series:
            r.observe(float(v))
        # Feed an artificial spike; the prediction cannot fall below it.
        r.observe(1e6)
        assert r.predict_next() >= 1e6

    def test_history_window_bounded(self):
        r = RollingPredictor(history_slots=10, min_history=4)
        for v in range(100):
            r.observe(float(v))
        assert len(r._history) == 10

    def test_horizon_takes_window_max(self):
        series = _periodic(3)
        r = RollingPredictor(min_history=144)
        for v in series:
            r.observe(float(v))
        one = r.predict_next(1)
        two = r.predict_next(2)
        assert two >= one - 1e-9

    def test_rejects_zero_horizon(self):
        r = RollingPredictor()
        r.observe(1.0)
        with pytest.raises(ValueError):
            r.predict_next(0)

    def test_tracks_demand_model(self, small_demand):
        pair = small_demand.pairs[0]
        t = np.arange(0, 3 * 86400.0, 300.0)
        series = small_demand.rate_mbps(*pair, t)
        r = RollingPredictor(min_history=288)
        errs = []
        for i, v in enumerate(series):
            if i > 2 * 288:
                errs.append(abs(r.predict_next() - v))
            r.observe(float(v))
        assert np.mean(errs) / series.max() < 0.10
