"""Tests for Algorithm 1 (path control)."""

import numpy as np
import pytest

from repro.controlplane.model import ControlConfig
from repro.controlplane.pathcontrol import path_control
from repro.traffic.streams import Stream, VIDEO_PROFILES
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM

CODES = ["A", "B", "C"]


def make_state(lat=None, loss=None, premium_lat=None, premium_loss=None):
    """Triangle topology state: defaults are healthy symmetric links."""
    lat = lat or {}
    loss = loss or {}
    premium_lat = premium_lat or {}
    premium_loss = premium_loss or {}

    def state(a, b, t):
        if t is I:
            return (lat.get((a, b), 100.0), loss.get((a, b), 0.0001))
        return (premium_lat.get((a, b), 80.0),
                premium_loss.get((a, b), 0.00001))
    return state


def stream(sid, src, dst, mbps):
    return Stream(sid, src, dst, mbps, VIDEO_PROFILES[2])


def cfg(**overrides):
    defaults = dict(container_capacity_mbps=1000.0, max_containers=16,
                    internet_bandwidth_mbps=10000.0,
                    premium_bandwidth_mbps=5000.0)
    defaults.update(overrides)
    return ControlConfig(**defaults)


def gw(n=4):
    return {c: n for c in CODES}


class TestBasicAssignment:
    def test_single_stream_direct_path(self):
        result = path_control([stream(1, "A", "B", 10.0)], CODES,
                              make_state(), cfg(), gateways=gw())
        assert len(result.assignments) == 1
        a = result.assignments[0]
        # Without fee information premium (80 ms) legitimately beats
        # Internet (100 ms); either way the path must be the direct hop.
        assert a.path.regions == ("A", "B")
        assert a.mbps == 10.0
        assert a.meets_constraints
        assert not result.unassigned

    def test_all_demand_assigned(self):
        streams = [stream(i, "A", "B", 5.0) for i in range(10)]
        result = path_control(streams, CODES, make_state(), cfg(),
                              gateways=gw())
        assert result.total_assigned_mbps() == pytest.approx(50.0)

    def test_internet_preferred_when_healthy(self):
        """The hybrid prefers the cheap tier when its quality suffices."""
        from repro.underlay.pricing import PricingModel
        from repro.underlay.config import PricingConfig
        from repro.underlay.regions import default_regions
        fees = PricingModel(default_regions()[:3], PricingConfig(),
                            np.random.default_rng(0))
        codes = [r.code for r in default_regions()[:3]]

        def state(a, b, t):
            return (100.0, 0.0001) if t is I else (95.0, 0.00001)

        result = path_control([Stream(1, codes[0], codes[1], 10.0,
                                      VIDEO_PROFILES[0])],
                              codes, state, cfg(), gateways={c: 4 for c in
                                                             codes},
                              fees=fees)
        # Premium is 5 ms faster but ~7x the fee: Internet must win.
        assert result.assignments[0].path.link_types == (I,)

    def test_premium_chosen_when_internet_bad(self):
        state = make_state(loss={("A", "B"): 0.2, ("A", "C"): 0.2,
                                 ("C", "B"): 0.2, ("B", "C"): 0.2,
                                 ("B", "A"): 0.2, ("C", "A"): 0.2})
        result = path_control([stream(1, "A", "B", 10.0)], CODES, state,
                              cfg(), gateways=gw())
        assert result.assignments[0].path.link_types == (P,)

    def test_relay_path_when_direct_degraded(self):
        # A->B Internet is terrible; A->C->B is fine; premium costly.
        state = make_state(lat={("A", "B"): 3000.0},
                           premium_lat={("A", "B"): 500.0})
        result = path_control([stream(1, "A", "B", 10.0)], CODES, state,
                              cfg(), gateways=gw())
        path = result.assignments[0].path
        assert path.regions == ("A", "C", "B")

    def test_forwarding_tables_match_paths(self):
        state = make_state(lat={("A", "B"): 3000.0},
                           premium_lat={("A", "B"): 500.0})
        result = path_control([stream(7, "A", "B", 10.0)], CODES, state,
                              cfg(), gateways=gw())
        assert result.forwarding_tables["A"][7][0] == "C"
        assert result.forwarding_tables["C"][7][0] == "B"


class TestCapacityConstraints:
    def test_region_capacity_limits_assignment(self):
        config = cfg(container_capacity_mbps=10.0)
        result = path_control([stream(1, "A", "B", 100.0)], CODES,
                              make_state(), config,
                              gateways={"A": 2, "B": 2, "C": 2})
        # 2 containers x 10 Mbps per region: at most 20 Mbps assigned.
        assert result.total_assigned_mbps() <= 20.0 + 1e-6
        assert result.unassigned

    def test_uncapacitated_mode_assigns_everything(self):
        config = cfg(container_capacity_mbps=10.0)
        result = path_control([stream(1, "A", "B", 100.0)], CODES,
                              make_state(), config, gateways=None)
        assert not result.unassigned

    def test_internet_bandwidth_cap_forces_spill(self):
        config = cfg(internet_bandwidth_mbps=30.0)
        result = path_control([stream(1, "A", "B", 100.0)], CODES,
                              make_state(), config, gateways=gw(64))
        inet = result.internet_egress["A"]
        assert inet <= 30.0 + 1e-6
        # The remainder rides premium or relays.
        assert result.total_assigned_mbps() == pytest.approx(100.0)

    def test_premium_pair_cap_respected(self):
        state = make_state(loss={(a, b): 0.5 for a in CODES for b in CODES
                                 if a != b})  # force premium
        config = cfg(premium_bandwidth_mbps=25.0)
        result = path_control([stream(1, "A", "B", 100.0)], CODES, state,
                              config, gateways=gw(64))
        for usage in result.premium_usage.values():
            assert usage <= 25.0 + 1e-6

    def test_demand_split_across_paths_when_needed(self):
        config = cfg(internet_bandwidth_mbps=30.0,
                     premium_bandwidth_mbps=40.0)
        result = path_control([stream(1, "A", "B", 100.0)], CODES,
                              make_state(), config, gateways=gw(64))
        paths = result.assignment_for(1)
        assert len(paths) >= 2

    def test_region_traffic_counts_every_touched_region(self):
        state = make_state(lat={("A", "B"): 3000.0},
                           premium_lat={("A", "B"): 500.0})
        result = path_control([stream(1, "A", "B", 10.0)], CODES, state,
                              cfg(), gateways=gw())
        assert result.region_traffic["A"] == pytest.approx(10.0)
        assert result.region_traffic["C"] == pytest.approx(10.0)
        assert result.region_traffic["B"] == pytest.approx(10.0)


class TestOrderingHeuristic:
    def test_long_latency_streams_get_first_pick(self):
        """With tight capacity, the highest-latency pair wins the relay."""
        # Region B's processing capacity is the contended resource; A->B
        # is the long path.  Premium is priced out by making it slow, so
        # latencies are Internet latencies.
        slow_premium = {(a, b): 2000.0 for a in CODES for b in CODES
                        if a != b}
        state = make_state(lat={("A", "B"): 400.0, ("C", "B"): 100.0,
                                ("A", "C"): 100.0},
                           premium_lat=slow_premium)
        config = cfg(container_capacity_mbps=10.0)
        # Region B can process only 10 Mbps total.
        gateways = {"A": 64, "B": 1, "C": 64}
        long_stream = stream(1, "A", "B", 10.0)
        short_stream = stream(2, "C", "B", 10.0)
        result = path_control([short_stream, long_stream], CODES, state,
                              config, gateways=gateways)
        assigned = {a.stream.stream_id: a.mbps for a in result.assignments}
        # The A->B stream (higher latency) is served first.
        assert assigned.get(1, 0.0) == pytest.approx(10.0)

    def test_used_gateways_reflect_headroom(self):
        config = cfg(container_capacity_mbps=10.0, capacity_headroom=1.0)
        result = path_control([stream(1, "A", "B", 25.0)], CODES,
                              make_state(), config, gateways=gw(64))
        assert result.used_gateways["A"] == 3  # ceil(25/10)


class TestConstraintFlag:
    def test_infeasible_quality_marked(self):
        # Loss is above the limit everywhere: traffic still flows (the
        # production system must carry it) but the assignment is flagged.
        # Note the *latency* limit scales with the direct premium latency
        # by design, so uniform high latency alone stays 'feasible'.
        all_pairs = {(a, b): 0.08 for a in CODES for b in CODES if a != b}
        state = make_state(loss=dict(all_pairs),
                           premium_loss=dict(all_pairs))
        result = path_control([stream(1, "A", "B", 10.0)], CODES, state,
                              cfg(), gateways=gw())
        assert result.assignments
        assert not result.assignments[0].meets_constraints

    def test_max_hops_respected(self):
        result = path_control([stream(1, "A", "B", 10.0)], CODES,
                              make_state(), cfg(max_hops=2), gateways=gw())
        assert len(result.assignments[0].path.hops) <= 2


class TestStatistics:
    def test_average_relay_hops_weighted(self):
        state = make_state(lat={("A", "B"): 3000.0},
                           premium_lat={("A", "B"): 500.0})
        streams = [stream(1, "A", "B", 10.0),   # 2 hops via C
                   stream(2, "A", "C", 30.0)]   # direct
        result = path_control(streams, CODES, state, cfg(), gateways=gw())
        assert result.average_relay_hops() == pytest.approx(
            (2 * 10 + 1 * 30) / 40.0)

    def test_empty_streams(self):
        result = path_control([], CODES, make_state(), cfg(), gateways=gw())
        assert result.assignments == []
        assert result.average_relay_hops() == 0.0


class TestRebuildBudget:
    def test_exhaustion_warns_instead_of_silently_truncating(self):
        """Streams left unplaced when max_rebuilds runs out must be loud."""
        streams = [stream(1, "A", "B", 600.0), stream(2, "A", "B", 600.0)]
        with pytest.warns(UserWarning, match="rebuild budget"):
            result = path_control(streams, CODES, make_state(), cfg(),
                                  gateways={c: 1 for c in CODES},
                                  max_rebuilds=0)
        # The residual demand still falls through to the best-effort
        # pass / unassigned — the warning changes visibility, not routing.
        assigned = result.total_assigned_mbps()
        residual = sum(r for __, r in result.unassigned)
        assert assigned + residual == pytest.approx(1200.0)
        assert residual > 0

    def test_sufficient_budget_does_not_warn(self):
        import warnings as _warnings

        streams = [stream(1, "A", "B", 600.0), stream(2, "A", "B", 600.0)]
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", UserWarning)
            path_control(streams, CODES, make_state(), cfg(),
                         gateways=gw(), max_rebuilds=40)

    def test_exhaustion_counter_increments(self):
        from repro import obs

        streams = [stream(1, "A", "B", 600.0), stream(2, "A", "B", 600.0)]
        with obs.capture() as hub:
            with pytest.warns(UserWarning, match="rebuild budget"):
                path_control(streams, CODES, make_state(), cfg(),
                             gateways={c: 1 for c in CODES}, max_rebuilds=0)
        snap = hub.metrics.snapshot()
        assert snap["pathcontrol.rebuild_budget_exhausted"]["value"] >= 1


class TestAssignmentIndex:
    def test_matches_linear_scan(self):
        streams = [stream(1, "A", "B", 10.0), stream(2, "B", "C", 20.0),
                   stream(3, "A", "C", 700.0), stream(4, "C", "A", 5.0)]
        result = path_control(streams, CODES, make_state(), cfg(),
                              gateways=gw())
        assert result.assignments
        for sid in {a.stream.stream_id for a in result.assignments}:
            assert result.assignment_for(sid) == [
                a for a in result.assignments
                if a.stream.stream_id == sid]

    def test_split_stream_returns_every_piece(self):
        # 1500 Mbps cannot fit either A->B link alone: the stream splits.
        streams = [stream(7, "A", "B", 1500.0)]
        result = path_control(streams, CODES, make_state(),
                              cfg(internet_bandwidth_mbps=1000.0,
                                  premium_bandwidth_mbps=800.0),
                              gateways=gw())
        pieces = result.assignment_for(7)
        assert len(pieces) >= 2
        assert sum(a.mbps for a in pieces) == pytest.approx(1500.0)

    def test_unknown_stream_returns_empty(self):
        result = path_control([stream(1, "A", "B", 10.0)], CODES,
                              make_state(), cfg(), gateways=gw())
        assert result.assignment_for(999) == []
