"""Deterministic workloads + digests for the golden-equivalence tests.

The module builds two seeded control workloads — the paper's 11-region
deployment scale and the 22-region what-if from ``bench_scalability`` —
and distils full control outputs (path control, capacity control,
reaction plans) into JSON-stable digests.  Floats are stored as
``float.hex()`` strings so equality is bit-exact, not approximate.

Run ``python tests/controlplane/golden_workloads.py`` to (re)generate
the frozen reference fixtures under ``tests/controlplane/golden/``.
Regenerate ONLY when a deliberate behaviour change is made; the whole
point of the fixtures is to prove refactors do not move a single bit.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Tuple

import numpy as np

from repro.controlplane.capacity import capacity_control
from repro.controlplane.model import ControlConfig
from repro.controlplane.pathcontrol import PathControlResult, path_control
from repro.controlplane.reactionplan import generate_reaction_plans
from repro.experiments.base import standard_demand, standard_underlay
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.streams import StreamWorkload
from repro.underlay.regions import Region, default_regions

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The two frozen workloads: name -> builder.
WORKLOADS: Dict[str, Callable] = {}


def _workload(fn):
    WORKLOADS[fn.__name__] = fn
    return fn


class Workload:
    """Everything one golden scenario needs to run the control stack."""

    def __init__(self, underlay, streams, now: float):
        self.underlay = underlay
        self.streams = streams
        self.now = now
        self.codes = underlay.codes
        self.config = ControlConfig()
        self.gateways = {c: 8 for c in underlay.codes}
        self.fees = underlay.pricing

    def state_fn(self):
        """The scalar LinkStateFn the pre-snapshot control stack used."""
        u, now = self.underlay, self.now

        def state(a: str, b: str, t) -> Tuple[float, float]:
            link = u.link(a, b, t)
            return (float(link.latency_ms(now)), float(link.loss_rate(now)))

        return state


@_workload
def paper_scale() -> Workload:
    """Eleven regions, peak-hour demand, 8 stream chunks per pair."""
    u = standard_underlay()
    demand = standard_demand()
    workload = StreamWorkload(np.random.default_rng(0),
                              max_streams_per_pair=8)
    now = 8 * 3600.0
    matrix = TrafficMatrix.from_model(demand, now)
    return Workload(u, workload.decompose(matrix), now)


@_workload
def double_scale() -> Workload:
    """The 22-region what-if from ``bench_scalability``."""
    from repro.traffic.demand import DemandModel
    from repro.underlay.config import UnderlayConfig
    from repro.underlay.topology import build_underlay

    base = default_regions()
    extra = [Region(r.name + " 2", r.code[:2] + "2", r.latitude + 3.0,
                    r.longitude - 5.0, r.utc_offset, r.continent)
             for r in base]
    u = build_underlay(base + extra, UnderlayConfig(horizon_s=7200.0), seed=2)
    demand = DemandModel(base + extra, seed=2)
    workload = StreamWorkload(np.random.default_rng(0),
                              max_streams_per_pair=2)
    now = 3600.0
    matrix = TrafficMatrix.from_model(demand, now)
    return Workload(u, workload.decompose(matrix), now)


# --------------------------------------------------------------------- digest
def _hex(x: float) -> str:
    return float(x).hex()


def path_result_digest(result: PathControlResult) -> Dict:
    """A JSON-stable, bit-exact digest of one path-control output."""
    return {
        "assignments": [
            [a.stream.stream_id, a.stream.src, a.stream.dst,
             [[h[0], h[1], h[2].value] for h in a.path.hops],
             _hex(a.mbps), _hex(a.latency_ms), _hex(a.loss_rate),
             bool(a.meets_constraints)]
            for a in result.assignments],
        "unassigned": sorted(
            [s.stream_id, _hex(residual)]
            for s, residual in result.unassigned),
        "region_traffic": {c: _hex(v)
                           for c, v in sorted(result.region_traffic.items())},
        "internet_egress": {c: _hex(v)
                            for c, v in sorted(result.internet_egress.items())},
        "premium_usage": {f"{i}->{j}": _hex(v)
                          for (i, j), v in sorted(result.premium_usage.items())},
        "used_gateways": dict(sorted(result.used_gateways.items())),
        "forwarding_tables": {
            region: {str(sid): [nxt, t.value]
                     for sid, (nxt, t) in sorted(table.items())}
            for region, table in sorted(result.forwarding_tables.items())},
        "graph_rebuilds": result.graph_rebuilds,
    }


def control_digest(wl: Workload, state, context=None, walks_fn=None) -> Dict:
    """Run the full two-step control + reaction plans; digest everything.

    `state` is whatever the control stack accepts as link state (the
    scalar callback pre-refactor; callback or snapshot post-refactor).
    `context` optionally threads an `EpochSolveContext` through both
    solves (the sharded tests pass a pool-backed one), and `walks_fn`
    optionally pre-computes the reaction-plan route walks (e.g.
    `ControlPool.reaction_walks`) — both must be value-transparent for
    the digest to match the frozen references.
    """
    r_cur = path_control(wl.streams, wl.codes, state, wl.config,
                         gateways=wl.gateways, fees=wl.fees,
                         context=context)
    decision = capacity_control(wl.streams, wl.codes, state, wl.config,
                                wl.gateways, r_cur, fees=wl.fees,
                                context=context)
    walks = (walks_fn(r_cur, state, wl.config.loss_ms_penalty)
             if walks_fn is not None else None)
    plans = generate_reaction_plans(r_cur, state,
                                    wl.config.loss_ms_penalty, walks=walks)
    return outputs_digest(r_cur, decision, plans)


def outputs_digest(r_cur, decision, plans) -> Dict:
    """Digest an already-computed (step 1, step 2, plans) triple."""
    return {
        "path_control": path_result_digest(r_cur),
        "capacity": {
            "add": dict(sorted(decision.add.items())),
            "remove": dict(sorted(decision.remove.items())),
            "target": dict(sorted(decision.target.items())),
            "uncapacitated": path_result_digest(decision.uncapacitated),
        },
        "reaction_plans": {
            f"{sid}:{region}": list(plan.relay_regions)
            for (sid, region), plan in sorted(plans.items())},
    }


def fixture_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.json"


def load_fixture(name: str) -> Dict:
    return json.loads(fixture_path(name).read_text())


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, build in WORKLOADS.items():
        wl = build()
        digest = control_digest(wl, wl.state_fn())
        out = fixture_path(name)
        out.write_text(json.dumps(digest, indent=1, sort_keys=True) + "\n")
        n_assign = len(digest["path_control"]["assignments"])
        print(f"{out}: {n_assign} assignments, "
              f"{digest['path_control']['graph_rebuilds']} rebuilds, "
              f"{len(digest['reaction_plans'])} plans")


if __name__ == "__main__":
    main()
