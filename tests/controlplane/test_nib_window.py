"""Tests for the windowed NIB and robust link-state planning."""

import pytest

from repro.controlplane.controller import Controller
from repro.controlplane.nib import LinkReport, NetworkInformationBase
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET


def _report(lat, loss=0.0, t=0.0):
    return LinkReport("A", "B", I, lat, loss, t)


class TestWindow:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            NetworkInformationBase(window=0)

    def test_history_bounded_by_window(self):
        nib = NetworkInformationBase(window=3)
        for k in range(6):
            nib.update(_report(100.0 + k, t=float(k)))
        history = nib.history("A", "B", I)
        assert len(history) == 3
        assert [r.latency_ms for r in history] == [103.0, 104.0, 105.0]

    def test_get_returns_latest(self):
        nib = NetworkInformationBase(window=3)
        nib.update(_report(100.0, t=0.0))
        nib.update(_report(200.0, t=1.0))
        assert nib.get("A", "B", I).latency_ms == 200.0

    def test_out_of_order_report_dropped(self):
        nib = NetworkInformationBase(window=3)
        nib.update(_report(100.0, t=10.0))
        nib.update(_report(999.0, t=5.0))
        assert len(nib.history("A", "B", I)) == 1
        assert nib.latency_ms("A", "B", I) == 100.0

    def test_history_empty_for_unknown_link(self):
        nib = NetworkInformationBase(window=3)
        assert nib.history("A", "B", I) == []


class TestRobustState:
    def test_percentile_over_window(self):
        nib = NetworkInformationBase(window=5)
        for k, loss in enumerate([0.0, 0.0, 0.0, 0.0, 0.2]):
            nib.update(_report(100.0, loss, t=float(k)))
        __, loss_p90 = nib.robust_state("A", "B", I, 90.0)
        __, loss_p50 = nib.robust_state("A", "B", I, 50.0)
        assert loss_p90 > 0.05
        assert loss_p50 == pytest.approx(0.0)

    def test_window_one_equals_latest(self):
        nib = NetworkInformationBase(window=1)
        nib.update(_report(123.0, 0.01, t=0.0))
        assert nib.robust_state("A", "B", I, 90.0) == (123.0, 0.01)

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            NetworkInformationBase(window=2).robust_state("A", "B", I)

    def test_bad_percentile_rejected(self):
        nib = NetworkInformationBase(window=2)
        nib.update(_report(1.0))
        with pytest.raises(ValueError):
            nib.robust_state("A", "B", I, 150.0)


class TestRobustController:
    def test_requires_window_for_robust_planning(self):
        with pytest.raises(ValueError):
            Controller(["A", "B"], nib_window=1, robust_percentile=90.0)

    def test_robust_state_used_for_planning(self):
        ctrl = Controller(["A", "B"], nib_window=4, robust_percentile=90.0)
        # Three clean reports, one terrible one: the pessimistic view
        # must remember the bad sample.
        for k, loss in enumerate([0.3, 0.0, 0.0, 0.0]):
            ctrl.nib.update(_report(100.0, loss, t=float(k)))
        __, loss = ctrl.link_state("A", "B", I)
        assert loss > 0.05

    def test_last_sample_mode_forgets(self):
        ctrl = Controller(["A", "B"])  # window 1
        ctrl.nib.update(_report(100.0, 0.3, t=0.0))
        ctrl.nib.update(_report(100.0, 0.0, t=1.0))
        __, loss = ctrl.link_state("A", "B", I)
        assert loss == pytest.approx(0.0)

    def test_symmetric_mode_composes_with_robust(self):
        ctrl = Controller(["A", "B"], nib_window=3, robust_percentile=100.0,
                          symmetric_only=True)
        ctrl.nib.update(LinkReport("A", "B", I, 100.0, 0.2, 0.0))
        ctrl.nib.update(LinkReport("B", "A", I, 300.0, 0.0, 0.0))
        lat, loss = ctrl.link_state("A", "B", I)
        assert lat == pytest.approx(200.0)
        assert loss == pytest.approx(0.1)
