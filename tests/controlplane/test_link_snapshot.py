"""NIB matrix snapshots and the controller's `link_snapshot`.

These pin the whole-matrix paths (`latest_snapshot`, `robust_snapshot`,
`Controller.link_snapshot`) to their scalar counterparts (`get`,
`robust_state`, `Controller.link_state`) — exact equality per link,
including every topology-variant mask — plus the telemetry the
snapshot layer emits.
"""

import numpy as np
import pytest

from repro import obs
from repro.controlplane.controller import Controller
from repro.controlplane.model import ControlConfig
from repro.controlplane.nib import LinkReport, NetworkInformationBase
from repro.controlplane.pathcontrol import path_control
from repro.traffic.streams import VIDEO_PROFILES, Stream
from repro.underlay.linkstate import LinkType

I, P = LinkType.INTERNET, LinkType.PREMIUM

CODES = ["A", "B", "C"]


def fill_nib(nib, t0=0.0, rounds=1, skip=()):
    """Deterministic reports for every directed link and tier."""
    for r in range(rounds):
        k = 0
        for lt in (I, P):
            for a in CODES:
                for b in CODES:
                    if a == b or (a, b, lt) in skip:
                        continue
                    k += 1
                    nib.update(LinkReport(
                        a, b, lt,
                        latency_ms=10.0 * k + 3.0 * r,
                        loss_rate=min(0.001 * k + 0.002 * r, 1.0),
                        reported_at=t0 + 10.0 * r))


def links():
    for lt in (I, P):
        for a in CODES:
            for b in CODES:
                if a != b:
                    yield a, b, lt


class TestNibSnapshots:
    def test_latest_snapshot_matches_get(self):
        nib = NetworkInformationBase(window=3, codes=CODES)
        fill_nib(nib, rounds=3)
        snap = nib.latest_snapshot(CODES)
        for a, b, lt in links():
            report = nib.get(a, b, lt)
            assert snap.lookup(a, b, lt) == (report.latency_ms,
                                             report.loss_rate)

    def test_robust_snapshot_matches_robust_state(self):
        nib = NetworkInformationBase(window=4, codes=CODES)
        fill_nib(nib, rounds=6)  # ring wraps: 6 reports into 4 slots
        for pct in (50.0, 90.0, 99.0):
            snap = nib.robust_snapshot(CODES, pct)
            for a, b, lt in links():
                assert snap.lookup(a, b, lt) == nib.robust_state(a, b, lt,
                                                                 pct)

    def test_partial_window_matches(self):
        nib = NetworkInformationBase(window=8, codes=CODES)
        fill_nib(nib, rounds=2)  # only 2 of 8 slots filled
        snap = nib.robust_snapshot(CODES, 90.0)
        for a, b, lt in links():
            assert snap.lookup(a, b, lt) == nib.robust_state(a, b, lt, 90.0)

    def test_never_reported_links_are_missing(self):
        nib = NetworkInformationBase(window=2, codes=CODES)
        fill_nib(nib, skip={("A", "B", I)})
        snap = nib.latest_snapshot(CODES)
        assert snap.lookup("A", "B", I) == (np.inf, 1.0)
        robust = nib.robust_snapshot(CODES, 90.0)
        assert robust.lookup("A", "B", I) == (np.inf, 1.0)

    def test_unknown_region_in_codes(self):
        nib = NetworkInformationBase(window=1, codes=CODES)
        fill_nib(nib)
        snap = nib.latest_snapshot(CODES + ["Z"])
        assert snap.lookup("A", "Z", P) == (np.inf, 1.0)
        assert snap.lookup("A", "B", P) == (nib.get("A", "B", P).latency_ms,
                                            nib.get("A", "B", P).loss_rate)

    def test_empty_nib_snapshot(self):
        nib = NetworkInformationBase()
        snap = nib.robust_snapshot(CODES)
        assert snap.lookup("A", "B", I) == (np.inf, 1.0)

    def test_grow_on_unseen_region_keeps_data(self):
        nib = NetworkInformationBase(window=2, codes=["A"])
        fill_nib(nib, rounds=2)  # grows to admit B and C
        snap = nib.latest_snapshot(CODES)
        for a, b, lt in links():
            report = nib.get(a, b, lt)
            assert snap.lookup(a, b, lt) == (report.latency_ms,
                                             report.loss_rate)

    def test_stale_out_of_order_report_ignored_everywhere(self):
        nib = NetworkInformationBase(window=2, codes=CODES)
        nib.update(LinkReport("A", "B", I, 50.0, 0.01, reported_at=100.0))
        nib.update(LinkReport("A", "B", I, 99.0, 0.5, reported_at=90.0))
        assert nib.get("A", "B", I).latency_ms == 50.0
        assert nib.latest_snapshot(CODES).lookup("A", "B", I) == (50.0, 0.01)

    def test_bad_percentile_rejected(self):
        nib = NetworkInformationBase(window=2, codes=CODES)
        fill_nib(nib, rounds=2)
        with pytest.raises(ValueError):
            nib.robust_snapshot(CODES, 120.0)


class TestControllerLinkSnapshot:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"premium_only": True},
        {"internet_only": True},
        {"symmetric_only": True},
        {"nib_window": 4, "robust_percentile": 90.0},
        {"symmetric_only": True, "nib_window": 4, "robust_percentile": 75.0},
    ])
    def test_matches_scalar_link_state(self, kwargs):
        ctrl = Controller(CODES, ControlConfig(), **kwargs)
        # Leave one direction unreported so the symmetric variant hits
        # its "one side missing" branch.
        fill_nib(ctrl.nib, rounds=4, skip={("C", "A", P)})
        snap = ctrl.link_snapshot()
        for a, b, lt in links():
            assert snap.lookup(a, b, lt) == ctrl.link_state(a, b, lt)


class TestSnapshotTelemetry:
    def test_snapshot_reuses_counter_tracks_rebuilds(self):
        """Rebuild passes reuse the epoch snapshot instead of
        re-evaluating link state; the counter proves it."""
        config = ControlConfig(container_capacity_mbps=10.0,
                               internet_bandwidth_mbps=10.0,
                               premium_bandwidth_mbps=10.0)
        streams = [Stream(i, "A", "B", 8.0, VIDEO_PROFILES[2])
                   for i in range(4)]

        def state(a, b, t):
            return (40.0, 0.0)

        with obs.capture() as tel:
            result = path_control(streams, ["A", "B"], state, config,
                                  gateways={"A": 2, "B": 2})
            builds = [e for e in tel.events_json()
                      if e.get("step") == "snapshot_build"]
            reuses = tel.metrics.counter(
                "pathcontrol.snapshot_reuses").value
        # The scalar callback is evaluated into a snapshot exactly once…
        assert len(builds) == 1
        # …and every later graph build reuses it.
        assert result.graph_rebuilds >= 1
        assert reuses >= result.graph_rebuilds

    def test_prebuilt_snapshot_means_no_build_span(self, small_underlay):
        config = ControlConfig()
        codes = small_underlay.codes
        streams = [Stream(0, codes[0], codes[1], 5.0, VIDEO_PROFILES[2])]
        snap = small_underlay.snapshot(600.0)
        with obs.capture() as tel:
            path_control(streams, codes, snap, config,
                         gateways={c: 2 for c in codes})
            builds = [e for e in tel.events_json()
                      if e.get("step") == "snapshot_build"]
        assert builds == []
