"""Tests for paths and the §5.2 problem model."""

import pytest

from repro.controlplane.model import (ControlConfig, ObjectiveBreakdown,
                                      OverlayPath, path_latency_ms,
                                      path_loss_rate)
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM


def _state(lat_map, loss_map=None):
    loss_map = loss_map or {}

    def state(a, b, t):
        return (lat_map.get((a, b, t), 100.0),
                loss_map.get((a, b, t), 0.0))
    return state


class TestOverlayPath:
    def test_direct(self):
        p = OverlayPath.direct("A", "B", I)
        assert p.src == "A" and p.dst == "B"
        assert p.relay_count == 0
        assert p.regions == ("A", "B")

    def test_via(self):
        p = OverlayPath.via(["A", "B", "C"], P)
        assert p.hops == (("A", "B", P), ("B", "C", P))
        assert p.relay_count == 1

    def test_via_needs_two_regions(self):
        with pytest.raises(ValueError):
            OverlayPath.via(["A"], I)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            OverlayPath(())

    def test_disconnected_hops_rejected(self):
        with pytest.raises(ValueError):
            OverlayPath((("A", "B", I), ("C", "D", I)))

    def test_mixed_link_types(self):
        p = OverlayPath((("A", "B", I), ("B", "C", P)))
        assert p.link_types == (I, P)
        assert p.uses_premium()

    def test_pure_internet_does_not_use_premium(self):
        assert not OverlayPath.direct("A", "B", I).uses_premium()


class TestPathMetrics:
    def test_latency_sums_hops(self):
        state = _state({("A", "B", I): 50.0, ("B", "C", I): 70.0})
        p = OverlayPath.via(["A", "B", "C"], I)
        assert path_latency_ms(p, state) == pytest.approx(120.0)

    def test_loss_compounds(self):
        state = _state({}, {("A", "B", I): 0.1, ("B", "C", I): 0.2})
        p = OverlayPath.via(["A", "B", "C"], I)
        assert path_loss_rate(p, state) == pytest.approx(1 - 0.9 * 0.8)

    def test_zero_loss(self):
        p = OverlayPath.direct("A", "B", I)
        assert path_loss_rate(p, _state({})) == 0.0

    def test_loss_of_lossless_plus_lossy(self):
        state = _state({}, {("A", "B", I): 0.0, ("B", "C", I): 0.5})
        p = OverlayPath.via(["A", "B", "C"], I)
        assert path_loss_rate(p, state) == pytest.approx(0.5)


class TestControlConfig:
    def test_latency_limit_floor(self):
        cfg = ControlConfig(latency_limit_floor_ms=400.0,
                            latency_limit_stretch=1.6)
        assert cfg.latency_limit_ms(100.0) == 400.0

    def test_latency_limit_stretch_for_far_pairs(self):
        cfg = ControlConfig(latency_limit_floor_ms=400.0,
                            latency_limit_stretch=1.6)
        assert cfg.latency_limit_ms(300.0) == pytest.approx(480.0)


class TestObjective:
    def test_weighted_total(self):
        obj = ObjectiveBreakdown(util_lat=2.0, util_cost=3.0,
                                 weight_latency=1.0, weight_cost=2.0)
        assert obj.total == pytest.approx(8.0)
