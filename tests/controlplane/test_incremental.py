"""Golden equivalence + tier classification for incremental path control.

The acceptance bar: whatever reuse tier the engine picks, its epoch
outputs are bit-identical (value-wise) to a fresh monolithic solve on
the same inputs — including the quality-mask threshold-crossing edge
case, where a previously-lossy link becomes usable and a full warm
re-solve must happen.
"""

import copy
from dataclasses import replace

import pytest

from repro import obs
from repro.controlplane.incremental import (IncrementalEngine, TIER_COLD,
                                            TIER_IDENTICAL, TIER_MASKED,
                                            TIER_WARM)
from repro.underlay.linkstate import LinkType
from repro.underlay.snapshot import TYPE_INDEX
from tests.controlplane.golden_workloads import (WORKLOADS, control_digest,
                                                 outputs_digest)

II = TYPE_INDEX[LinkType.INTERNET]
PI = TYPE_INDEX[LinkType.PREMIUM]


@pytest.fixture(scope="module")
def wl():
    return WORKLOADS["paper_scale"]()


@pytest.fixture(scope="module")
def wl64(wl):
    """paper_scale with enough gateways that no stream needs the
    best-effort fallback pass — the masked tier requires a clean solve."""
    rich = copy.copy(wl)
    rich.gateways = {c: 64 for c in wl.codes}
    return rich


def _epoch(engine, wl, snap, streams=None):
    streams = streams if streams is not None else wl.streams
    tier = engine.begin_epoch(streams, wl.codes, snap, wl.config,
                              wl.gateways, wl.fees)
    r_cur = engine.path_control()
    decision = engine.capacity_control()
    plans = engine.reaction_plans(wl.config.loss_ms_penalty)
    engine.commit()
    return tier, r_cur, decision, plans


def _mono_digest(wl, snap, streams=None):
    """A fresh monolithic solve of the same epoch, digested."""
    if streams is not None:
        wl = copy.copy(wl)
        wl.streams = streams
    return control_digest(wl, snap)


class TestMultiEpoch:
    def test_every_epoch_matches_monolithic(self, wl):
        engine = IncrementalEngine()
        tiers = []
        for k in range(3):
            snap = wl.underlay.snapshot(wl.now + 600.0 * k)
            tier, r, d, p = _epoch(engine, wl, snap)
            tiers.append(tier)
            assert outputs_digest(r, d, p) == _mono_digest(
                wl, wl.underlay.snapshot(wl.now + 600.0 * k)), \
                f"epoch {k} ({tier}) diverged"
        assert tiers[0] == TIER_COLD
        assert TIER_WARM in tiers[1:]

    def test_composes_with_sharded_pool(self, wl):
        from repro.controlplane.sharded import ControlPool

        with ControlPool(2, min_shard_rows=1) as pool:
            engine = IncrementalEngine(dp_fn=pool.dp_fn)
            for k in range(2):
                snap = wl.underlay.snapshot(wl.now + 600.0 * k)
                __, r, d, p = _epoch(engine, wl, snap)
                assert outputs_digest(r, d, p) == _mono_digest(
                    wl, wl.underlay.snapshot(wl.now + 600.0 * k))


class TestReuseTiers:
    def test_identical_snapshot_full_reuse(self, wl):
        engine = IncrementalEngine()
        __, r1, d1, p1 = _epoch(engine, wl, wl.underlay.snapshot(wl.now))
        # A *distinct but value-equal* snapshot: the delta is empty.
        tier, r2, d2, p2 = _epoch(engine, wl, wl.underlay.snapshot(wl.now))
        assert tier == TIER_IDENTICAL
        assert r2 is r1 and d2 is d1 and p2 is p1

    def test_masked_internet_change_full_reuse(self, wl64):
        snap1 = wl64.underlay.snapshot(wl64.now)
        snap2 = wl64.underlay.snapshot(wl64.now)
        # One Internet link lossy beyond the quality limit in both
        # epochs; its latency and loss both move between them.
        snap1.loss[II, 0, 1] = 0.05
        snap2.loss[II, 0, 1] = 0.09
        snap2.lat[II, 0, 1] = snap1.lat[II, 0, 1] + 3.0
        engine = IncrementalEngine()
        __, r1, d1, p1 = _epoch(engine, wl64, snap1)
        assert r1.fallback_streams == 0  # masked-tier precondition holds
        tier, r2, d2, p2 = _epoch(engine, wl64, snap2)
        assert tier == TIER_MASKED
        assert r2 is r1 and d2 is d1 and p2 is p1
        # The reuse is not just plausible — it matches a fresh solve.
        snap2b = wl64.underlay.snapshot(wl64.now)
        snap2b.loss[II, 0, 1] = 0.09
        snap2b.lat[II, 0, 1] = snap1.lat[II, 0, 1] + 3.0
        assert outputs_digest(r2, d2, p2) == _mono_digest(wl64, snap2b)

    def test_lossy_change_with_fallback_streams_resolves(self, wl):
        """Same masked-looking delta, but the base epoch ran the
        best-effort pass (which ignores the loss mask) — must re-solve."""
        snap1 = wl.underlay.snapshot(wl.now)
        snap2 = wl.underlay.snapshot(wl.now)
        snap1.loss[II, 0, 1] = 0.05
        snap2.loss[II, 0, 1] = 0.09
        engine = IncrementalEngine()
        __, r1, __, __ = _epoch(engine, wl, snap1)
        assert r1.fallback_streams > 0
        tier, r2, d2, p2 = _epoch(engine, wl, snap2)
        assert tier == TIER_WARM
        snap2b = wl.underlay.snapshot(wl.now)
        snap2b.loss[II, 0, 1] = 0.09
        assert outputs_digest(r2, d2, p2) == _mono_digest(wl, snap2b)

    def test_quality_mask_threshold_crossing_resolves(self, wl):
        """A lossy link recovering below the loss limit MUST re-solve."""
        snap1 = wl.underlay.snapshot(wl.now)
        snap1.loss[II, 0, 1] = 0.05
        snap2 = wl.underlay.snapshot(wl.now)
        snap2.loss[II, 0, 1] = 0.001  # crosses under loss_limit=0.005
        engine = IncrementalEngine()
        _epoch(engine, wl, snap1)
        tier, r2, d2, p2 = _epoch(engine, wl, snap2)
        assert tier == TIER_WARM
        snap2b = wl.underlay.snapshot(wl.now)
        snap2b.loss[II, 0, 1] = 0.001
        assert outputs_digest(r2, d2, p2) == _mono_digest(wl, snap2b)

    def test_premium_changes_are_never_masked(self, wl):
        snap1 = wl.underlay.snapshot(wl.now)
        snap2 = wl.underlay.snapshot(wl.now)
        snap1.loss[PI, 0, 1] = 0.05
        snap2.loss[PI, 0, 1] = 0.09  # above limit both epochs, but premium
        engine = IncrementalEngine()
        _epoch(engine, wl, snap1)
        tier, r2, d2, p2 = _epoch(engine, wl, snap2)
        assert tier == TIER_WARM
        snap2b = wl.underlay.snapshot(wl.now)
        snap2b.loss[PI, 0, 1] = 0.09
        assert outputs_digest(r2, d2, p2) == _mono_digest(wl, snap2b)

    def test_demand_change_forces_resolve(self, wl):
        engine = IncrementalEngine()
        snap = wl.underlay.snapshot(wl.now)
        _epoch(engine, wl, snap)
        bumped = ([replace(wl.streams[0],
                           demand_mbps=wl.streams[0].demand_mbps + 1.0)]
                  + list(wl.streams[1:]))
        tier, r2, d2, p2 = _epoch(engine, wl, wl.underlay.snapshot(wl.now),
                                  streams=bumped)
        assert tier == TIER_WARM
        assert outputs_digest(r2, d2, p2) == _mono_digest(
            wl, wl.underlay.snapshot(wl.now), streams=bumped)


class TestWarmSeeding:
    def test_small_delta_seeds_pairs_and_walks(self, wl):
        snap1 = wl.underlay.snapshot(wl.now)
        snap2 = wl.underlay.snapshot(wl.now)
        snap2.lat[II, 0, 1] = snap1.lat[II, 0, 1] + 0.25
        engine = IncrementalEngine()
        _epoch(engine, wl, snap1)
        with obs.capture() as hub:
            tier, r2, d2, p2 = _epoch(engine, wl, snap2)
        assert tier == TIER_WARM
        metrics = hub.metrics.snapshot()
        assert metrics["pathcontrol.incremental_seeded_pairs"]["value"] > 0
        assert metrics["pathcontrol.incremental_seeded_walks"]["value"] > 0
        snap2b = wl.underlay.snapshot(wl.now)
        snap2b.lat[II, 0, 1] = snap1.lat[II, 0, 1] + 0.25
        assert outputs_digest(r2, d2, p2) == _mono_digest(wl, snap2b)
