"""Tests for the soft-state gateway membership table."""

import pytest

from repro.controlplane.membership import (MembershipConfig, MembershipTable,
                                           membership)


def _table(ttl_s=3.0):
    return MembershipTable(MembershipConfig(enabled=True, ttl_s=ttl_s))


class TestConfig:
    def test_disabled_by_default(self):
        assert not MembershipConfig().enabled

    def test_convenience_constructor_arms(self):
        config = membership(ttl_s=5.0)
        assert config.enabled
        assert config.ttl_s == 5.0

    @pytest.mark.parametrize("ttl", [0.0, -1.0])
    def test_ttl_must_be_positive(self, ttl):
        with pytest.raises(ValueError):
            MembershipConfig(enabled=True, ttl_s=ttl)

    def test_table_refuses_disabled_config(self):
        with pytest.raises(ValueError, match="enabled"):
            MembershipTable(MembershipConfig())


class TestRefreshExpiry:
    def test_refresh_counts_joins_once_per_gateway(self):
        table = _table()
        table.refresh("HGH", [1, 2], now=0.0)
        table.refresh("HGH", [1, 2], now=1.0)
        assert table.counters.joins == 2
        assert table.counters.refreshes == 4
        assert table.size == 2
        assert table.alive_count("HGH") == 2

    def test_entries_expire_strictly_after_ttl(self):
        table = _table(ttl_s=3.0)
        table.refresh("HGH", [1], now=0.0)
        assert table.expire(3.0) == []          # exactly at TTL: still live
        assert table.expire(3.1) == [("HGH", 1)]
        assert table.size == 0
        assert table.counters.expiries == 1

    def test_expiry_keeps_the_region_known(self):
        table = _table()
        table.refresh("HGH", [1], now=0.0)
        table.expire(10.0)
        assert table.known("HGH")
        assert table.alive_count("HGH") == 0

    def test_rejoin_after_expiry_counts_a_fresh_join(self):
        table = _table()
        table.refresh("HGH", [1], now=0.0)
        table.expire(10.0)
        table.refresh("HGH", [1], now=10.0)
        assert table.counters.joins == 2


class TestClamp:
    def test_never_seen_region_keeps_configured_capacity(self):
        table = _table()
        assert table.clamp({"HGH": 4}) == {"HGH": 4}
        assert table.counters.regions_demoted == 0

    def test_known_but_expired_region_demotes_to_zero(self):
        table = _table()
        table.refresh("HGH", [1, 2], now=0.0)
        table.expire(10.0)
        assert table.clamp({"HGH": 4, "SIN": 3}, now=10.0) == {
            "HGH": 0, "SIN": 3}
        assert table.counters.regions_demoted == 1

    def test_live_region_clamps_to_alive_count(self):
        table = _table()
        table.refresh("HGH", [1, 2], now=0.0)
        assert table.clamp({"HGH": 4}) == {"HGH": 2}
        assert table.clamp({"HGH": 1}) == {"HGH": 1}


class TestReset:
    def test_reset_drops_soft_state_but_keeps_counters(self):
        table = _table()
        table.refresh("HGH", [1], now=0.0)
        table.reset()
        assert table.size == 0
        assert not table.known("HGH")
        assert table.counters.joins == 1
        # Back to boot grace: the configured count rides again.
        assert table.clamp({"HGH": 4}) == {"HGH": 4}
