"""Tests for Algorithm 2 (reaction plans), including Properties 1 and 2."""

import pytest

from repro.controlplane.model import (ControlConfig, OverlayPath,
                                      path_latency_ms, path_loss_rate)
from repro.controlplane.pathcontrol import path_control
from repro.controlplane.reactionplan import (ReactionPlan,
                                             generate_reaction_plans,
                                             naive_premium_path, _score)
from repro.traffic.streams import Stream, VIDEO_PROFILES
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM

CODES = ["A", "B", "C", "D"]


def make_state(premium_lat=None):
    premium_lat = premium_lat or {}

    def state(a, b, t):
        if t is I:
            return (100.0, 0.001)
        return (premium_lat.get((a, b), 90.0), 0.00001)
    return state


def _plans_for_path(regions, state):
    """Run Algorithm 2 on one explicit multi-hop path."""
    streams = [Stream(1, regions[0], regions[-1], 10.0, VIDEO_PROFILES[0])]
    result = path_control(streams, CODES, state,
                          ControlConfig(), gateways={c: 8 for c in CODES})
    # Force the desired path by replacing the assignment's path.
    result.assignments[0].path = OverlayPath.via(regions, I)
    return result, generate_reaction_plans(result, state)


def test_plan_for_every_non_terminal_region():
    state = make_state()
    __, plans = _plans_for_path(["A", "B", "C", "D"], state)
    assert {(1, "A"), (1, "B"), (1, "C")} == set(plans.keys())


def test_destination_has_no_plan():
    state = make_state()
    __, plans = _plans_for_path(["A", "B", "D"], state)
    assert (1, "D") not in plans


def test_plan_default_is_direct_premium():
    state = make_state()
    __, plans = _plans_for_path(["A", "B", "D"], state)
    # With near-uniform premium latencies, direct premium wins.
    assert plans[(1, "B")].relay_regions == ("D",)


def test_plan_uses_later_relay_when_better():
    # Premium A->D is terrible; A->C->D is much better and C is on-path.
    state = make_state(premium_lat={("A", "D"): 2000.0, ("A", "C"): 50.0,
                                    ("C", "D"): 50.0})
    __, plans = _plans_for_path(["A", "B", "C", "D"], state)
    plan_a = plans[(1, "A")]
    assert plan_a.relay_regions[-1] == "D"
    assert "C" in plan_a.relay_regions


def test_property1_plan_beats_naive_premium_substitution():
    """Property 1: the plan's score <= replacing remaining hops by premium."""
    state = make_state(premium_lat={("A", "D"): 700.0, ("B", "D"): 600.0})
    result, plans = _plans_for_path(["A", "B", "C", "D"], state)
    original = result.assignments[0].path
    for region in ("A", "B", "C"):
        plan = plans[(1, region)]
        naive = naive_premium_path(original, region)
        assert _score(plan.backup_path(), state) <= _score(naive, state) + 1e-9


def test_property2_plan_regions_subset_of_path():
    """Property 2: backup paths only use regions already on the path."""
    state = make_state(premium_lat={("A", "D"): 2000.0})
    result, plans = _plans_for_path(["A", "B", "C", "D"], state)
    on_path = set(result.assignments[0].path.regions)
    for plan in plans.values():
        assert set(plan.backup_path().regions) <= on_path


def test_backup_paths_are_all_premium():
    state = make_state()
    __, plans = _plans_for_path(["A", "B", "C", "D"], state)
    for plan in plans.values():
        assert all(t is P for t in plan.backup_path().link_types)


def test_plan_next_hop():
    plan = ReactionPlan(1, "A", ("C", "D"))
    assert plan.next_hop == "C"
    assert plan.backup_path().regions == ("A", "C", "D")


def test_naive_premium_path_requires_on_path_region():
    path = OverlayPath.via(["A", "B", "C"], I)
    with pytest.raises(ValueError):
        naive_premium_path(path, "D")
    with pytest.raises(ValueError):
        naive_premium_path(path, "C")  # the destination has no remainder


def test_plans_generated_from_real_path_control():
    streams = [Stream(i, "A", "D", 5.0, VIDEO_PROFILES[0])
               for i in range(3)]
    state = make_state()
    result = path_control(streams, CODES, state, ControlConfig(),
                          gateways={c: 8 for c in CODES})
    plans = generate_reaction_plans(result, state)
    # Every (stream, non-terminal region) of every assignment has a plan.
    for a in result.assignments:
        for region in a.path.regions[:-1]:
            assert (a.stream.stream_id, region) in plans


def test_split_stream_keeps_first_assignment_plan():
    """A stream split over two paths keeps one plan per region (the
    first/best assignment's)."""
    config = ControlConfig(internet_bandwidth_mbps=6.0,
                           premium_bandwidth_mbps=6.0)
    state = make_state()
    streams = [Stream(1, "A", "D", 10.0, VIDEO_PROFILES[0])]
    result = path_control(streams, CODES, state, config,
                          gateways={c: 8 for c in CODES})
    plans = generate_reaction_plans(result, state)
    keys = [k for k in plans if k[0] == 1]
    assert len(keys) == len(set(keys))
