"""Tests for capacity control (§5.3, step 2)."""


from repro.controlplane.model import ControlConfig
from repro.controlplane.pathcontrol import path_control
from repro.controlplane.capacity import capacity_control
from repro.traffic.streams import Stream, VIDEO_PROFILES
from repro.underlay.linkstate import LinkType

CODES = ["A", "B", "C"]


def _state(a, b, t):
    if t is LinkType.INTERNET:
        return (100.0, 0.0001)
    return (80.0, 0.00001)


def _cfg():
    return ControlConfig(container_capacity_mbps=10.0, max_containers=16,
                         capacity_headroom=1.0)


def _stream(sid, src, dst, mbps):
    return Stream(sid, src, dst, mbps, VIDEO_PROFILES[2])


def _decide(streams, available):
    r_cur = path_control(streams, CODES, _state, _cfg(), gateways=available)
    return capacity_control(streams, CODES, _state, _cfg(), available, r_cur)


def test_scale_up_when_demand_exceeds_available():
    # 50 Mbps needs 5 containers per touched region; only 2 available.
    decision = _decide([_stream(1, "A", "B", 50.0)],
                       {"A": 2, "B": 2, "C": 2})
    assert decision.add["A"] == 3
    assert decision.target["A"] == 5
    assert decision.target["B"] == 5


def test_scale_down_when_over_provisioned():
    decision = _decide([_stream(1, "A", "B", 10.0)],
                       {"A": 8, "B": 8, "C": 8})
    assert decision.remove["A"] == 7
    assert decision.target["A"] == 1


def test_idle_region_keeps_minimum_one():
    decision = _decide([_stream(1, "A", "B", 10.0)],
                       {"A": 2, "B": 2, "C": 4})
    assert decision.target["C"] == 1
    assert decision.remove["C"] == 3


def test_steady_state_no_churn():
    decision = _decide([_stream(1, "A", "B", 20.0)],
                       {"A": 2, "B": 2, "C": 1})
    assert decision.add == {"A": 0, "B": 0, "C": 0}
    assert decision.remove == {"A": 0, "B": 0, "C": 0}


def test_target_capped_at_quota():
    decision = _decide([_stream(1, "A", "B", 1000.0)],
                       {"A": 2, "B": 2, "C": 2})
    assert decision.target["A"] <= 16


def test_keeps_max_of_current_and_next_usage():
    """Paper rule: remove only surplus over max(R_cur, R_next)."""
    # Current capacity serves 30 Mbps (3 gw); prediction says 10 Mbps.
    # R_cur used 3, R_next needs 1, available 8 -> keep 3.
    streams_now = [_stream(1, "A", "B", 30.0)]
    available = {"A": 8, "B": 8, "C": 8}
    r_cur = path_control(streams_now, CODES, _state, _cfg(),
                         gateways=available)
    predicted = [_stream(2, "A", "B", 10.0)]
    decision = capacity_control(predicted, CODES, _state, _cfg(), available,
                                r_cur)
    assert decision.target["A"] == 3


def test_total_target_sums_regions():
    decision = _decide([_stream(1, "A", "B", 10.0)],
                       {"A": 1, "B": 1, "C": 1})
    assert decision.total_target() == sum(decision.target.values())


def test_uncapacitated_result_attached():
    decision = _decide([_stream(1, "A", "B", 500.0)],
                       {"A": 1, "B": 1, "C": 1})
    assert not decision.uncapacitated.unassigned
