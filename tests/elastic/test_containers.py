"""Tests for container pools and provisioning delays."""

import numpy as np
import pytest

from repro.elastic.containers import (ContainerPool, ProvisioningDelayModel,
                                      ScalingAction)


@pytest.fixture()
def pool(rng):
    return ContainerPool("HGH", rng, initial=2, max_containers=10)


class TestProvisioningDelayModel:
    def test_delay_takes_tens_of_seconds_at_least(self, rng):
        model = ProvisioningDelayModel()
        delays = [model.sample(rng) for __ in range(200)]
        assert min(delays) > 25.0

    def test_mean_delay_on_minutes_scale(self, rng):
        model = ProvisioningDelayModel()
        delays = [model.sample(rng) for __ in range(500)]
        assert 60.0 < np.mean(delays) < 240.0

    def test_platform_load_slows_provisioning(self):
        model = ProvisioningDelayModel(ip_allocation_mean_s=60.0)
        base = np.mean([model.sample(np.random.default_rng(i))
                        for i in range(300)])
        loaded = np.mean([model.sample(np.random.default_rng(i), 5.0)
                          for i in range(300)])
        assert loaded > base + 60.0

    def test_rejects_load_below_one(self, rng):
        with pytest.raises(ValueError):
            ProvisioningDelayModel().sample(rng, platform_load=0.5)

    def test_cache_hit_skips_image_pull(self, rng):
        always_hit = ProvisioningDelayModel(image_cache_hit_rate=1.0)
        delays = [always_hit.sample(rng) for __ in range(200)]
        assert max(delays) < 45 + 30 + 60  # no pull component


class TestContainerPool:
    def test_initial_ready(self, pool):
        assert pool.ready_count(0.0) == 2

    def test_scale_up_not_ready_immediately(self, pool):
        pool.scale_to(5, now=0.0)
        assert pool.ready_count(1.0) == 2

    def test_scale_up_ready_after_delay(self, pool):
        pool.scale_to(5, now=0.0)
        assert pool.ready_count(600.0) == 5

    def test_total_count_includes_inflight(self, pool):
        pool.scale_to(5, now=0.0)
        assert pool.total_count(1.0) == 5

    def test_scale_down_is_immediate(self, pool):
        action = pool.scale_to(1, now=0.0)
        assert pool.ready_count(0.0) == 1
        assert action.removed == 1

    def test_scale_down_cancels_inflight_first(self, pool):
        pool.scale_to(6, now=0.0)
        pool.scale_to(3, now=1.0)  # cancel 3 of the 4 in flight
        assert pool.ready_count(600.0) == 3
        assert pool.ready_count(600.0) >= 2  # ready ones never cancelled

    def test_target_capped_at_max(self, pool):
        pool.scale_to(100, now=0.0)
        assert pool.total_count(0.0) == 10

    def test_negative_target_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.scale_to(-1, now=0.0)

    def test_scale_to_zero_allowed(self, pool):
        pool.scale_to(0, now=0.0)
        assert pool.ready_count(0.0) == 0

    def test_invalid_initial_rejected(self, rng):
        with pytest.raises(ValueError):
            ContainerPool("X", rng, initial=11, max_containers=10)

    def test_time_cannot_go_backwards(self, pool):
        pool.ready_count(100.0)
        with pytest.raises(ValueError):
            pool.ready_count(50.0)

    def test_actions_recorded(self, pool):
        pool.scale_to(5, now=0.0)
        pool.scale_to(2, now=10.0)
        assert len(pool.actions) == 2
        assert isinstance(pool.actions[0], ScalingAction)
        assert pool.actions[0].added == 3

    def test_container_hours_for_steady_pool(self, pool):
        hours = pool.container_hours(3600.0)
        assert hours == pytest.approx(2.0)

    def test_container_hours_counts_additions_from_ready_time(self, rng):
        pool = ContainerPool("X", rng, initial=0, max_containers=10)
        pool.scale_to(1, now=0.0)
        # The container becomes ready somewhere within ~4 minutes; after
        # one hour the billed amount is strictly between 0 and 1 hour.
        hours = pool.container_hours(3600.0)
        assert 0.80 < hours < 1.0

    def test_container_hours_no_double_billing(self, rng):
        pool = ContainerPool("X", rng, initial=0, max_containers=10)
        pool.scale_to(1, now=0.0)
        # Query repeatedly (each accounting pass must not re-bill).
        h1 = pool.container_hours(1000.0)
        h2 = pool.container_hours(1000.0)
        assert h1 == pytest.approx(h2)
        h3 = pool.container_hours(2000.0)
        assert h3 == pytest.approx(h1 + (1000.0 / 3600.0), abs=1e-6)

    def test_removed_containers_stop_billing(self, pool):
        pool.scale_to(0, now=0.0)
        assert pool.container_hours(7200.0) == pytest.approx(0.0)


class _FixedDelays(ProvisioningDelayModel):
    """Delay model returning a scripted sequence (records the loads)."""

    def __init__(self, delays):
        super().__init__()
        self._delays = list(delays)
        self.loads_seen = []

    def sample(self, rng, platform_load=1.0):
        self.loads_seen.append(platform_load)
        return self._delays.pop(0)


class TestContainerPoolEdges:
    """Exact-timestamp and accounting edges of the pool lifecycle."""

    def _pool(self, rng, delays, initial=0):
        return ContainerPool("X", rng, initial=initial, max_containers=10,
                             delay_model=_FixedDelays(delays))

    def test_scale_down_cancels_newest_completions_first(self, rng):
        # Three starts finishing at t=100, 50, 10; cancelling two must
        # keep the EARLIEST completion (slowest-to-finish die first).
        pool = self._pool(rng, [100.0, 50.0, 10.0])
        pool.scale_to(3, now=0.0)
        pool.scale_to(1, now=1.0)
        assert pool.ready_count(9.99) == 0
        assert pool.ready_count(10.0) == 1
        assert pool.ready_count(1000.0) == 1  # the others never arrive

    def test_ready_count_promotes_at_exact_completion_time(self, rng):
        pool = self._pool(rng, [10.0])
        pool.scale_to(1, now=0.0)
        assert pool.ready_count(9.999999) == 0
        assert pool.ready_count(10.0) == 1  # boundary belongs to ready

    def test_inflight_billing_across_repeated_accounting(self, rng):
        # Accounting at t=15 (while the start is already complete but
        # not yet promoted) must bill [10, 15]; accounting again at
        # t=20 must bill only [15, 20] — never [10, 20] twice.
        pool = self._pool(rng, [10.0])
        pool.scale_to(1, now=0.0)
        assert pool.container_hours(15.0) == pytest.approx(5.0 / 3600.0)
        assert pool.container_hours(20.0) == pytest.approx(10.0 / 3600.0)
        # Same-instant repeats are idempotent.
        assert pool.container_hours(20.0) == pytest.approx(10.0 / 3600.0)

    def test_billing_starts_at_ready_not_at_request(self, rng):
        pool = self._pool(rng, [10.0])
        pool.scale_to(1, now=0.0)
        assert pool.container_hours(10.0) == pytest.approx(0.0)

    def test_platform_load_fn_inflates_scale_up(self, rng):
        model = _FixedDelays([10.0, 10.0])
        pool = ContainerPool("X", rng, initial=0, max_containers=10,
                             delay_model=model)
        pool.platform_load_fn = lambda now: 8.0
        pool.scale_to(2, now=0.0)
        assert model.loads_seen == [8.0, 8.0]

    def test_platform_load_fn_never_lowers_caller_load(self, rng):
        model = _FixedDelays([10.0])
        pool = ContainerPool("X", rng, initial=0, max_containers=10,
                             delay_model=model)
        pool.platform_load_fn = lambda now: 2.0
        pool.scale_to(1, now=0.0, platform_load=5.0)
        assert model.loads_seen == [5.0]
