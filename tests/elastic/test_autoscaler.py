"""Tests for autoscaling policies and their evaluation."""

import numpy as np
import pytest

from repro.elastic.autoscaler import (FixedAllocation, OptimalAllocation,
                                      ProactiveAutoscaler, ReactiveAutoscaler,
                                      TrackingAutoscaler, evaluate_autoscaler)
from repro.elastic.containers import ContainerPool


def _daily_demand(days=3, slot_s=300.0, peak=5000.0):
    """A smooth synthetic daily pattern with a repeating surge."""
    t = np.arange(0, days * 86400.0, slot_s)
    hours = (t / 3600.0) % 24.0
    base = peak * (0.05 + 0.95 * np.exp(-0.5 * ((hours - 12.0) / 3.0) ** 2))
    surge = np.where((hours >= 9.0) & (hours < 9.5), 2.0, 1.0)
    return base * surge


class TestReactiveAutoscaler:
    def test_scales_up_on_high_utilisation(self):
        scaler = ReactiveAutoscaler(1000.0, metric_delay_slots=0)
        assert scaler.decide(0, 900.0) > 1

    def test_holds_in_band(self):
        scaler = ReactiveAutoscaler(1000.0, metric_delay_slots=0)
        scaler.decide(0, 700.0)  # util 0.7: in band
        assert scaler.decide(1, 700.0) == 1

    def test_scales_down_on_low_utilisation(self):
        scaler = ReactiveAutoscaler(1000.0, metric_delay_slots=0)
        # Grow first.
        for k in range(8):
            scaler.decide(k, 10000.0)
        grown = scaler.decide(8, 10000.0)
        shrunk = scaler.decide(9, 100.0)
        assert shrunk < grown

    def test_never_below_one(self):
        scaler = ReactiveAutoscaler(1000.0, metric_delay_slots=0)
        for k in range(20):
            target = scaler.decide(k, 0.0)
        assert target == 1

    def test_metric_delay_defers_reaction(self):
        prompt = ReactiveAutoscaler(1000.0, metric_delay_slots=0)
        delayed = ReactiveAutoscaler(1000.0, metric_delay_slots=1)
        assert prompt.decide(0, 5000.0) > 1
        assert delayed.decide(0, 5000.0) > 1 or True  # first slot has no
        # history, so the delayed scaler acts on the same value; feed a
        # step change and check the delayed one lags one slot.
        p2 = ReactiveAutoscaler(1000.0, metric_delay_slots=1)
        p2.decide(0, 100.0)
        lagged = p2.decide(1, 9000.0)  # still sees the old 100
        caught_up = p2.decide(2, 9000.0)
        assert caught_up > lagged

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ReactiveAutoscaler(1000.0, high_utilisation=0.4,
                               low_utilisation=0.5)


class TestTrackingAutoscaler:
    def test_tracks_demand_with_headroom(self):
        scaler = TrackingAutoscaler(1000.0, headroom=1.2)
        assert scaler.decide(0, 2500.0) == 3

    def test_minimum_one(self):
        assert TrackingAutoscaler(1000.0).decide(0, 0.0) == 1


class TestProactiveAutoscaler:
    def test_falls_back_to_persistence_before_history(self):
        scaler = ProactiveAutoscaler(1000.0, min_history=10_000)
        target = scaler.decide(0, 2000.0)
        assert target >= 2

    def test_predicts_recurring_pattern(self):
        demand = _daily_demand(days=4)
        scaler = ProactiveAutoscaler(1000.0, min_history=144)
        targets = [scaler.decide(k, float(d)) for k, d in enumerate(demand)]
        # In the last simulated day the policy should anticipate the noon
        # peak: target at 11:30 >= demand at 12:00 / capacity.
        slots_per_day = int(86400 / 300)
        k_1130 = 3 * slots_per_day + int(11.5 * 12)
        noon_demand = demand[3 * slots_per_day + 12 * 12]
        assert targets[k_1130] * 1000.0 >= noon_demand * 0.9


class TestFixedAndOptimal:
    def test_fixed_is_constant(self):
        scaler = FixedAllocation(1000.0, previous_peak_mbps=5000.0)
        assert scaler.decide(0, 1.0) == scaler.decide(99, 9999.0) == 5

    def test_fixed_rejects_negative_peak(self):
        with pytest.raises(ValueError):
            FixedAllocation(1000.0, -1.0)

    def test_optimal_looks_ahead(self):
        scaler = OptimalAllocation(1000.0, [100.0, 5000.0, 100.0],
                                   headroom=1.0)
        assert scaler.decide(0, 100.0) == 5  # provisions for slot 1

    def test_optimal_covers_current_slot_when_falling(self):
        scaler = OptimalAllocation(1000.0, [100.0, 5000.0, 100.0, 100.0],
                                   headroom=1.0)
        # Deciding at slot 1 must not scale below slot 1's own demand.
        assert scaler.decide(1, 5000.0) == 5


class TestEvaluateAutoscaler:
    def test_fixed_peak_provisioning_never_under_provisions(self, rng):
        demand = _daily_demand()
        pool = ContainerPool("X", rng, initial=10, max_containers=1000)
        stats = evaluate_autoscaler(
            FixedAllocation(1000.0, float(demand.max()), headroom=1.1),
            demand, 1000.0, pool)
        assert stats.under_provisioned_fraction == 0.0

    def test_reactive_under_provisions_on_surges(self, rng):
        demand = _daily_demand(peak=50000.0)
        pool = ContainerPool("X", rng, initial=1, max_containers=10000)
        stats = evaluate_autoscaler(ReactiveAutoscaler(1000.0), demand,
                                    1000.0, pool)
        assert stats.under_provisioned_fraction > 0.0

    def test_proactive_beats_reactive(self):
        demand = _daily_demand(days=6, peak=50000.0)
        results = {}
        for name, policy in (("reactive", ReactiveAutoscaler(1000.0)),
                             ("proactive",
                              ProactiveAutoscaler(1000.0, min_history=144))):
            pool = ContainerPool("X", np.random.default_rng(1), initial=1,
                                 max_containers=10000)
            results[name] = evaluate_autoscaler(policy, demand, 1000.0, pool,
                                                warmup_slots=576)
        assert (results["proactive"].mean_error_rate
                <= results["reactive"].mean_error_rate)

    def test_stats_shapes_align(self, rng):
        demand = _daily_demand(days=1)
        pool = ContainerPool("X", rng, initial=1, max_containers=1000)
        stats = evaluate_autoscaler(TrackingAutoscaler(1000.0), demand,
                                    1000.0, pool)
        n = len(demand) - 1
        assert stats.error_rates.shape == (n,)
        assert stats.containers.shape == (n,)
        assert stats.demand_mbps.shape == (n,)

    def test_warmup_trims_slots(self, rng):
        demand = _daily_demand(days=1)
        pool = ContainerPool("X", rng, initial=1, max_containers=1000)
        stats = evaluate_autoscaler(TrackingAutoscaler(1000.0), demand,
                                    1000.0, pool, warmup_slots=50)
        assert stats.error_rates.shape == (len(demand) - 1 - 50,)

    def test_rejects_short_series(self, rng):
        pool = ContainerPool("X", rng, initial=1, max_containers=10)
        with pytest.raises(ValueError):
            evaluate_autoscaler(TrackingAutoscaler(1000.0), [1.0], 1000.0,
                                pool)


class TestDecisionTelemetry:
    """Autoscaler instrumentation: exact counters, flood-limited events."""

    @pytest.fixture(autouse=True)
    def clean_hub(self):
        from repro import obs
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def _flap(self, scaler, n):
        # Alternate demand so the reactive target changes every slot.
        for slot in range(n):
            scaler.decide(slot, 5000.0 if slot % 2 == 0 else 100.0)

    def test_counters_stay_exact_under_flood_limit(self):
        from repro import obs
        from repro.elastic.autoscaler import (_EVENT_FLOOD_LIMIT,
                                              _EVENT_SAMPLE_EVERY)
        tel = obs.enable()
        scaler = ReactiveAutoscaler(1000.0, metric_delay_slots=0)
        n = 4000
        self._flap(scaler, n)
        snap = tel.metrics.snapshot()
        changes = snap["autoscale.target_changes"]["value"]
        suppressed = snap["autoscale.events_suppressed"]["value"]
        events = len(tel.tracer.by_kind("autoscale"))
        assert snap["autoscale.decisions"]["value"] == n
        assert changes > _EVENT_FLOOD_LIMIT  # the gate actually engaged
        assert suppressed > 0
        assert events + suppressed == changes
        assert events <= _EVENT_FLOOD_LIMIT + changes / _EVENT_SAMPLE_EVERY

    def test_no_events_or_counts_while_disabled(self):
        from repro import obs
        tel = obs.telemetry()
        scaler = ReactiveAutoscaler(1000.0, metric_delay_slots=0)
        self._flap(scaler, 100)
        assert not tel.tracer.events
        assert "autoscale.decisions" not in tel.metrics.snapshot()
