"""Tests for the FEC + retransmission transport model."""

import numpy as np
import pytest

from repro.qoe.transport import (TransportConfig, expected_frame_delay_ms,
                                 frame_late_probability, residual_loss,
                                 transport_stall_series)
from repro.qoe.video import stall_series


class TestConfig:
    def test_recoverable_loss_from_overhead(self):
        cfg = TransportConfig(fec_overhead=0.25, fec_efficiency=1.0)
        assert cfg.recoverable_loss == pytest.approx(0.2)

    def test_efficiency_derates(self):
        full = TransportConfig(fec_efficiency=1.0).recoverable_loss
        half = TransportConfig(fec_efficiency=0.5).recoverable_loss
        assert half == pytest.approx(full / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(fec_overhead=-0.1)
        with pytest.raises(ValueError):
            TransportConfig(fec_efficiency=0.0)
        with pytest.raises(ValueError):
            TransportConfig(packets_per_frame=0)


class TestResidualLoss:
    def test_small_loss_fully_repaired(self):
        cfg = TransportConfig()
        loss = np.array([0.0, cfg.recoverable_loss * 0.5])
        np.testing.assert_allclose(residual_loss(loss, cfg), 0.0, atol=1e-9)

    def test_heavy_loss_passes_through(self):
        cfg = TransportConfig()
        out = residual_loss(np.array([0.5]), cfg)
        assert out[0] > 0.3

    def test_monotone(self):
        loss = np.linspace(0, 1, 50)
        out = residual_loss(loss)
        assert np.all(np.diff(out) >= -1e-9)

    def test_bounded(self):
        out = residual_loss(np.linspace(0, 1, 50))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestFrameDelay:
    def test_late_probability_grows_with_packets_per_frame(self):
        small = TransportConfig(packets_per_frame=1)
        large = TransportConfig(packets_per_frame=10)
        loss = np.array([0.2])
        assert (frame_late_probability(loss, large)
                > frame_late_probability(loss, small))

    def test_clean_network_no_delay_penalty(self):
        lat = np.array([100.0])
        out = expected_frame_delay_ms(lat, np.array([0.0]))
        assert out[0] == pytest.approx(100.0)

    def test_lossy_network_pays_rtts(self):
        cfg = TransportConfig(retransmit_rtts=1.5)
        lat = np.array([100.0])
        heavy = expected_frame_delay_ms(lat, np.array([0.9]), cfg)
        # Nearly every frame retransmits: ~100 + 1.0 * 1.5 * 200 = 400.
        assert heavy[0] > 350.0


class TestTransportStalls:
    def test_clean_network_never_stalls(self):
        lat = np.full(100, 120.0)
        assert not transport_stall_series(lat, np.zeros(100)).any()

    def test_pure_latency_stall(self):
        out = transport_stall_series(np.array([500.0]), np.array([0.0]))
        assert out[0]

    def test_loss_driven_stall(self):
        out = transport_stall_series(np.array([150.0]), np.array([0.3]))
        assert out[0]

    def test_fec_absorbs_light_loss(self):
        out = transport_stall_series(np.array([150.0]), np.array([0.02]))
        assert not out[0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            transport_stall_series(np.zeros(2), np.zeros(3))

    def test_agrees_with_threshold_model_on_ordering(self):
        """Both stall models rank a bad network above a good one."""
        rng = np.random.default_rng(3)
        lat = rng.uniform(30, 250, 2000)
        loss = rng.uniform(0, 0.04, 2000)
        good_simple = stall_series(lat, loss).mean()
        good_transport = transport_stall_series(lat, loss).mean()
        bad_simple = stall_series(lat * 4, loss * 8).mean()
        bad_transport = transport_stall_series(lat * 4, loss * 8).mean()
        assert bad_simple >= good_simple
        assert bad_transport >= good_transport
