"""Tests for the video QoE models."""

import numpy as np
import pytest

from repro.qoe.video import (VideoQoEConfig, frame_rate_series, stall_series,
                             stall_duration_buckets, stall_durations,
                             stall_ratio)


class TestStallSeries:
    def test_healthy_network_no_stalls(self):
        lat = np.full(100, 120.0)
        loss = np.full(100, 0.001)
        assert not stall_series(lat, loss).any()

    def test_high_latency_stalls(self):
        lat = np.array([100.0, 500.0, 100.0])
        loss = np.zeros(3)
        assert stall_series(lat, loss).tolist() == [False, True, False]

    def test_unrecoverable_loss_stalls(self):
        lat = np.full(3, 100.0)
        loss = np.array([0.0, 0.2, 0.04])
        assert stall_series(lat, loss).tolist() == [False, True, False]

    def test_fec_threshold_boundary(self):
        cfg = VideoQoEConfig(fec_recoverable_loss=0.05)
        loss = np.array([0.05, 0.0501])
        flags = stall_series(np.full(2, 100.0), loss, cfg)
        assert flags.tolist() == [False, True]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stall_series(np.zeros(3), np.zeros(4))

    def test_stall_ratio(self):
        lat = np.array([500.0, 100.0, 500.0, 100.0])
        assert stall_ratio(lat, np.zeros(4)) == pytest.approx(0.5)

    def test_stall_ratio_empty(self):
        assert stall_ratio(np.zeros(0), np.zeros(0)) == 0.0


class TestStallDurations:
    def test_single_run(self):
        stalled = np.array([False, True, True, True, False])
        np.testing.assert_allclose(stall_durations(stalled, 2.0), [6.0])

    def test_multiple_runs(self):
        stalled = np.array([True, False, True, True, False, True])
        np.testing.assert_allclose(stall_durations(stalled, 1.0),
                                   [1.0, 2.0, 1.0])

    def test_all_clear(self):
        assert stall_durations(np.zeros(5, dtype=bool), 1.0).size == 0

    def test_all_stalled(self):
        np.testing.assert_allclose(
            stall_durations(np.ones(5, dtype=bool), 1.0), [5.0])

    def test_empty(self):
        assert stall_durations(np.zeros(0, dtype=bool), 1.0).size == 0

    def test_buckets(self):
        stalled = np.concatenate([
            np.ones(3, dtype=bool), [False],    # 3 s  -> 2-5 s bucket
            np.ones(7, dtype=bool), [False],    # 7 s  -> 5-10 s
            np.ones(12, dtype=bool), [False],   # 12 s -> >10 s
            np.ones(1, dtype=bool), [False]])   # 1 s  -> ignored
        assert stall_duration_buckets(stalled, 1.0) == (1, 1, 1)


class TestFrameRate:
    def test_nominal_when_healthy(self):
        fps = frame_rate_series(np.full(10, 100.0), np.zeros(10))
        np.testing.assert_allclose(fps, 25.0)

    def test_loss_degrades_frames(self):
        fps = frame_rate_series(np.full(1, 100.0), np.array([0.04]))
        assert fps[0] == 25.0  # within FEC budget
        fps = frame_rate_series(np.full(1, 100.0), np.array([0.1]))
        assert fps[0] < 25.0

    def test_stall_floors_frame_rate(self):
        cfg = VideoQoEConfig(stalled_fps_fraction=0.2)
        fps = frame_rate_series(np.array([900.0]), np.zeros(1), cfg)
        assert fps[0] == pytest.approx(5.0)

    def test_total_loss_gives_zero_fps_before_floor(self):
        fps = frame_rate_series(np.full(1, 100.0), np.array([0.5]))
        assert fps[0] == pytest.approx(0.0)

    def test_monotone_in_loss(self):
        losses = np.linspace(0, 0.3, 20)
        fps = frame_rate_series(np.full(20, 100.0), losses)
        assert np.all(np.diff(fps) <= 1e-9)
