"""Tests for aggregated QoE summaries."""

import numpy as np
import pytest

from repro.qoe.metrics import summarize_qoe


def test_healthy_summary():
    lat = np.full(1000, 100.0)
    loss = np.full(1000, 0.001)
    s = summarize_qoe(lat, loss, step_s=1.0)
    assert s.stall_ratio == 0.0
    assert s.mean_fps == pytest.approx(25.0)
    assert s.mean_fluency > 4.5
    assert s.bad_audio_fraction == 0.0
    assert s.stall_buckets == (0, 0, 0)
    assert s.samples == 1000


def test_degraded_summary():
    lat = np.full(1000, 100.0)
    lat[100:104] = 900.0  # one 4 s stall
    loss = np.zeros(1000)
    loss[500:512] = 0.2   # one 12 s stall
    s = summarize_qoe(lat, loss, step_s=1.0)
    assert s.stall_ratio == pytest.approx(16 / 1000)
    assert s.stall_buckets == (1, 0, 1)


def test_bad_audio_fraction_counts_score_one():
    lat = np.full(100, 100.0)
    loss = np.zeros(100)
    loss[:10] = 0.6  # catastrophic loss -> fluency 1
    s = summarize_qoe(lat, loss, step_s=1.0)
    assert s.bad_audio_fraction == pytest.approx(0.1)
    assert s.low_audio_fraction >= s.bad_audio_fraction


def test_empty_series():
    s = summarize_qoe(np.zeros(0), np.zeros(0), step_s=1.0)
    assert s.samples == 0
    assert s.stall_ratio == 0.0


def test_ordering_between_networks():
    """A strictly worse network never scores better."""
    rng = np.random.default_rng(0)
    lat = rng.uniform(50, 200, 500)
    loss = rng.uniform(0, 0.02, 500)
    good = summarize_qoe(lat, loss, step_s=1.0)
    bad = summarize_qoe(lat * 4, loss * 10, step_s=1.0)
    assert bad.stall_ratio >= good.stall_ratio
    assert bad.mean_fps <= good.mean_fps
    assert bad.mean_fluency <= good.mean_fluency
