"""Tests for the E-model audio fluency score."""

import numpy as np
import pytest

from repro.qoe.audio import (audio_fluency_series, e_model_r_factor,
                             fluency_score_counts, r_to_mos)


class TestRFactor:
    def test_perfect_network_near_base(self):
        r = e_model_r_factor(np.zeros(1), np.zeros(1))
        assert r[0] == pytest.approx(93.2)

    def test_latency_reduces_r(self):
        r_low = e_model_r_factor(np.array([50.0]), np.zeros(1))
        r_high = e_model_r_factor(np.array([400.0]), np.zeros(1))
        assert r_high < r_low

    def test_knee_at_177ms(self):
        slope_before = (e_model_r_factor(np.array([150.0]), np.zeros(1))
                        - e_model_r_factor(np.array([100.0]), np.zeros(1)))
        slope_after = (e_model_r_factor(np.array([300.0]), np.zeros(1))
                       - e_model_r_factor(np.array([250.0]), np.zeros(1)))
        assert slope_after < slope_before  # steeper impairment past the knee

    def test_loss_reduces_r(self):
        r_clean = e_model_r_factor(np.array([100.0]), np.array([0.0]))
        r_lossy = e_model_r_factor(np.array([100.0]), np.array([0.05]))
        assert r_lossy < r_clean - 10

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            e_model_r_factor(np.zeros(2), np.zeros(3))


class TestMosMapping:
    def test_r_zero_is_mos_one(self):
        assert r_to_mos(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_r_100_near_best(self):
        assert r_to_mos(np.array([100.0]))[0] == pytest.approx(4.5, abs=0.1)

    def test_monotone(self):
        r = np.linspace(0, 100, 50)
        mos = r_to_mos(r)
        assert np.all(np.diff(mos) >= -1e-9)

    def test_clipped_outside_range(self):
        assert r_to_mos(np.array([-50.0]))[0] == 1.0
        assert r_to_mos(np.array([150.0]))[0] == r_to_mos(np.array([100.0]))[0]


class TestFluency:
    def test_scores_in_one_to_five(self):
        lat = np.random.default_rng(0).uniform(0, 2000, 1000)
        loss = np.random.default_rng(1).uniform(0, 1, 1000)
        scores = audio_fluency_series(lat, loss)
        assert np.all(scores >= 1.0) and np.all(scores <= 5.0)

    def test_perfect_network_scores_five(self):
        scores = audio_fluency_series(np.zeros(1), np.zeros(1))
        assert scores[0] == pytest.approx(5.0, abs=0.2)

    def test_terrible_network_scores_one(self):
        scores = audio_fluency_series(np.array([3000.0]), np.array([0.5]))
        assert scores[0] == pytest.approx(1.0)

    def test_monotone_in_loss(self):
        losses = np.linspace(0, 0.5, 30)
        scores = audio_fluency_series(np.full(30, 100.0), losses)
        assert np.all(np.diff(scores) <= 1e-9)

    def test_score_counts(self):
        scores = np.array([1.0, 1.4, 2.2, 4.9, 5.0])
        counts = fluency_score_counts(scores)
        assert counts[1] == 2
        assert counts[2] == 1
        assert counts[4] == 1
        assert counts[5] == 1
        assert sum(counts.values()) == 5
