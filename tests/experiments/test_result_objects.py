"""Unit tests for experiment result-object helpers (no heavy runs)."""

import numpy as np
import pytest

from repro.experiments.base import cdf_summary, format_table
from repro.experiments.fig05_demand import DemandFigure
from repro.experiments.fig13_qoe import QoEComparison
from repro.experiments.fig16_casestudies import CaseStudy
from repro.experiments.fig17_cost import CostAnalysis
from repro.experiments.fig18_fast_reaction import FastReactionAblation
from repro.experiments.fig19_asymmetric import AsymmetricAblation
from repro.experiments.fig20_scaling import ScalingComparison
from repro.qoe.metrics import QoESummary


class TestFormatTable:
    def test_alignment_and_header(self):
        lines = format_table(["name", "value"],
                             [["a", 1.0], ["long-name", 123456.0]],
                             title="T")
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(l) == len(lines[1]) or True for l in lines)

    def test_float_formatting(self):
        lines = format_table(["v"], [[0.12345], [1234.5], [2.5]])
        joined = "\n".join(lines)
        assert "0.1234" in joined or "0.1235" in joined
        assert "1234" in joined

    def test_cdf_summary_quantiles(self):
        out = cdf_summary(np.arange(101.0))
        assert out == pytest.approx([10, 25, 50, 75, 90])


class TestCaseStudy:
    def _case(self):
        times = np.arange(0.0, 100.0, 10.0)
        return CaseStudy(
            "test", ("A", "B"), times,
            {"XRON": np.full(10, 50.0),
             "Internet only": np.where(times >= 50.0, 5000.0, 100.0)},
            window=(50.0, 100.0))

    def test_max_latency_respects_window(self):
        case = self._case()
        assert case.max_latency("Internet only") == 5000.0
        assert case.max_latency("XRON") == 50.0

    def test_improvement_ratio(self):
        assert self._case().xron_improvement == pytest.approx(100.0)


class TestCostAnalysis:
    def _analysis(self):
        return CostAnalysis(
            normal_hop_mean=1.2, reaction_hop_mean=1.05,
            fraction_paths_le_2_hops=0.95, premium_share=0.05,
            containers={"XRON": np.array([2.0, 4.0]),
                        "Fixed Allocation": np.array([10.0, 10.0]),
                        "Optimal Allocation": np.array([2.0, 3.0])},
            total_cost={"XRON": 10.0, "Internet only": 7.0,
                        "Premium only": 40.0},
            pair_costs={"XRON": np.array([0.5, 1.0])})

    def test_ratios(self):
        a = self._analysis()
        assert a.premium_over_xron == pytest.approx(4.0)
        assert a.xron_over_internet == pytest.approx(10 / 7)
        assert a.container_reduction_vs_fixed == pytest.approx(0.7)

    def test_lines_render(self):
        assert any("premium traffic share" in l
                   for l in self._analysis().lines())


class TestFastReactionAblation:
    def test_reduction_signs(self):
        ablation = FastReactionAblation(
            counts={"XRON-Basic": (100, 50, 10), "XRON": (10, 1, 0),
                    "XRON-Premium": (0, 0, 0)},
            hours=1.0)
        assert ablation.reduction(0) == pytest.approx(-0.9)
        assert ablation.reduction(1) == pytest.approx(-0.98)
        assert ablation.reduction(2) == pytest.approx(-1.0)

    def test_zero_baseline(self):
        ablation = FastReactionAblation(
            counts={"XRON-Basic": (0, 0, 0), "XRON": (0, 0, 0),
                    "XRON-Premium": (0, 0, 0)}, hours=1.0)
        assert ablation.reduction(0) == 0.0


class TestAsymmetricAblation:
    def test_fraction_improved(self):
        ablation = AsymmetricAblation(np.array([1.0, 1.0, 1.5, 2.0]))
        assert ablation.fraction_improved == pytest.approx(0.5)
        assert ablation.median_speedup_of_improved == pytest.approx(1.75)

    def test_no_improvements(self):
        ablation = AsymmetricAblation(np.array([1.0, 1.0]))
        assert ablation.fraction_improved == 0.0
        assert ablation.median_speedup_of_improved == 1.0


class TestScalingComparison:
    def test_metrics(self):
        cmp_ = ScalingComparison(
            {"Reactive": np.array([0.0, 0.5, 0.5, 0.0]),
             "Proactive": np.array([0.0, 0.0, 0.1, 0.0])})
        assert cmp_.under_provisioned_fraction("Reactive") == 0.5
        assert cmp_.mean_error("Proactive") == pytest.approx(0.025)
        assert cmp_.error_reduction == pytest.approx(0.9)
        assert cmp_.prevented_duration == pytest.approx(0.5)


class TestQoEComparisonHelpers:
    def _summary(self, stall, fps=25.0, bad=0.0):
        return QoESummary(stall_ratio=stall, mean_fps=fps,
                          mean_fluency=4.5, bad_audio_fraction=bad,
                          low_audio_fraction=bad, stall_buckets=(1, 2, 3),
                          samples=100)

    def test_reduction_vs(self):
        cmp_ = QoEComparison(
            results={}, summaries={"XRON": self._summary(0.02),
                                   "Internet only": self._summary(0.10)},
            daily={}, days=1.0)
        assert cmp_.reduction_vs("stall_ratio") == pytest.approx(-0.8)

    def test_zero_baseline(self):
        cmp_ = QoEComparison(
            results={}, summaries={"XRON": self._summary(0.02),
                                   "Internet only": self._summary(0.0)},
            daily={}, days=1.0)
        assert cmp_.reduction_vs("stall_ratio") == 0.0


class TestDemandFigureHelpers:
    def test_peak_and_surge(self):
        times = np.arange(0, 3600, 300.0)
        series = np.ones(12)
        series[6] = 4.0
        fig = DemandFigure(times, series, ("A", "B"), series, slot_s=300.0)
        assert fig.total_peak_ratio == pytest.approx(4.0)
        assert fig.total_surge_5min == pytest.approx(4.0)
