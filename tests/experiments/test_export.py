"""Tests for the CSV exporter."""

import csv

import numpy as np
import pytest

from repro.experiments.export import _write, write_csv
from repro.experiments.fig05_demand import DemandFigure
from repro.experiments.fig12_prediction import PredictionFigure
from repro.experiments.fig16_casestudies import CaseStudies, CaseStudy
from repro.experiments.fig20_scaling import ScalingComparison
from repro.experiments.ablation_weights import WeightSweep


def _read(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestWriteHelper:
    def test_columns_round_trip(self, tmp_path):
        path = _write(tmp_path / "x.csv", {"a": [1, 2], "b": [3.5, 4.5]})
        rows = _read(path)
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "3.5"]

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _write(tmp_path / "x.csv", {"a": [1], "b": [1, 2]})

    def test_creates_directories(self, tmp_path):
        path = _write(tmp_path / "deep" / "dir" / "x.csv", {"a": [1]})
        assert path.exists()


class TestDispatch:
    def test_unregistered_type_exports_nothing(self, tmp_path):
        assert write_csv(object(), tmp_path) == []
        assert list(tmp_path.iterdir()) == []

    def test_demand_figure(self, tmp_path):
        fig = DemandFigure(np.arange(3.0), np.array([1.0, 2, 3]),
                           ("A", "B"), np.array([4.0, 5, 6]), 60.0)
        paths = write_csv(fig, tmp_path)
        assert len(paths) == 1
        rows = _read(paths[0])
        assert rows[0] == ["time_s", "total_mbps", "example_pair_mbps"]
        assert len(rows) == 4

    def test_prediction_figure(self, tmp_path):
        fig = PredictionFigure(np.arange(2.0), np.array([1.0, 2]),
                               np.array([1.5, 2.5]), ("A", "B"))
        paths = write_csv(fig, tmp_path)
        assert _read(paths[0])[1] == ["0.0", "1.0", "1.5"]

    def test_case_studies(self, tmp_path):
        times = np.arange(4.0)
        case = CaseStudy("long-term", ("A", "B"), times,
                         {"XRON": np.ones(4),
                          "Internet only": np.full(4, 9.0)}, (0.0, 4.0))
        studies = CaseStudies(case, CaseStudy(
            "short-term", ("A", "B"), times, {"XRON": np.ones(4)},
            (0.0, 4.0)))
        paths = write_csv(studies, tmp_path)
        assert len(paths) == 2
        header = _read(paths[0])[0]
        assert "xron_latency_ms" in header
        assert "internet_only_latency_ms" in header

    def test_scaling_comparison_sorted(self, tmp_path):
        cmp_ = ScalingComparison({"Reactive": np.array([0.3, 0.1]),
                                  "Proactive": np.array([0.0, 0.0])})
        paths = write_csv(cmp_, tmp_path)
        rows = _read([p for p in paths if "reactive" in p.name][0])
        assert [r[0] for r in rows[1:]] == ["0.1", "0.3"]

    def test_weight_sweep(self, tmp_path):
        sweep = WeightSweep({0.0: (0.1, 100.0, 0.9),
                             120.0: (0.2, 20.0, 0.0)})
        paths = write_csv(sweep, tmp_path)
        rows = _read(paths[0])
        assert rows[0][0] == "cost_ms_per_fee"
        assert rows[1][0] == "0.0"


class TestEndToEnd:
    def test_real_experiment_exports(self, tmp_path):
        from repro.experiments import fig05_demand
        result = fig05_demand.run(slot_s=3600.0)
        paths = write_csv(result, tmp_path)
        assert paths and paths[0].stat().st_size > 0
