"""Tests for the extra ablation experiments."""

import pytest

from repro.controlplane.model import ControlConfig
from repro.controlplane.pathcontrol import ORDERINGS, path_control
from repro.experiments import (ablation_ordering, ablation_probing,
                               ablation_stability, reaction_latency)
from repro.traffic.streams import Stream, VIDEO_PROFILES
from repro.underlay.linkstate import LinkType


def test_path_control_rejects_unknown_ordering():
    def state(a, b, t):
        return (100.0, 0.0)

    with pytest.raises(ValueError):
        path_control([], ["A", "B"], state, ControlConfig(),
                     ordering="nonsense")


def test_all_orderings_accepted():
    def state(a, b, t):
        return (100.0, 0.0001) if t is LinkType.INTERNET else (80.0, 0.0)

    streams = [Stream(1, "A", "B", 5.0, VIDEO_PROFILES[0])]
    for ordering in ORDERINGS:
        result = path_control(streams, ["A", "B", "C"], state,
                              ControlConfig(), gateways={"A": 4, "B": 4,
                                                         "C": 4},
                              ordering=ordering)
        assert result.total_assigned_mbps() == pytest.approx(5.0)


def test_ordering_ablation_smoke(full_underlay):
    result = ablation_ordering.run(full_underlay, n_epochs=2)
    assert set(result.outcomes) == {"latency_desc", "latency_asc",
                                    "demand_desc"}
    for lh, tot in result.outcomes.values():
        assert 0.0 <= lh <= 1.0
        assert 0.0 <= tot <= 1.0
    assert result.lines()
    assert 0.0 <= result.long_haul_floor() <= 1.0


def test_probing_ablation_smoke(full_underlay):
    result = ablation_probing.run(full_underlay, window_s=3600.0,
                                  max_pairs=4,
                                  representative_counts=(1, 3))
    assert set(result.disagreement) == {1, 3}
    for v in result.disagreement.values():
        assert 0.0 <= v <= 1.0
    assert result.probe_streams[1] < result.probe_streams[3]
    assert result.lines()


def test_probing_ablation_more_reps_no_worse(full_underlay):
    result = ablation_probing.run(full_underlay, window_s=7200.0,
                                  max_pairs=6,
                                  representative_counts=(1, 5))
    assert result.disagreement[5] <= result.disagreement[1] + 0.02


def test_reaction_latency_smoke():
    result = reaction_latency.run(n_events=3, event_spacing_s=45.0)
    assert result.injected == 3
    assert result.detection_rate > 0.6
    assert result.mean_delay_s < 10.0
    assert result.lines()


def test_stability_ablation_smoke():
    result = ablation_stability.run(hours=0.5, eval_step_s=60.0)
    assert set(result.outcomes) == {"last sample", "robust p90"}
    for churn, stall, share in result.outcomes.values():
        assert 0.0 <= churn <= 1.0
        assert 0.0 <= stall <= 1.0
        assert 0.0 <= share <= 1.0
    assert result.lines()
