"""Smoke test for the partition-tolerance experiment."""

import pytest

from repro.experiments import partition
from repro.experiments.registry import get


@pytest.fixture(scope="module")
def report():
    return partition.run(partition_epochs=4, post_epochs=3)


def test_scenario_and_mode_grid(report):
    grid = {(r.scenario, r.mode) for r in report.rows}
    assert grid == {("partition-blackhole", "off"),
                    ("partition-blackhole", "on"),
                    ("membership-churn", "off"),
                    ("membership-churn", "on")}


def test_degraded_mode_collapses_intra_partition_blackholing(report):
    off = report.row("partition-blackhole", "off")
    on = report.row("partition-blackhole", "on")
    assert off.intra_blackholed_s > 0
    assert on.intra_blackholed_s == 0.0
    assert on.intra_blackholed_s < off.intra_blackholed_s


def test_degraded_mode_reconciles_cleanly_on_heal(report):
    on = report.row("partition-blackhole", "on")
    assert on.pcounter("partitions_started") == 1
    assert on.pcounter("partitions_healed") == 1
    assert on.pcounter("regional_installs_rejected") == 0
    assert on.pcounter("reconcile_fences") == 1
    assert on.reconverge_epochs >= 1
    assert on.heal_flaps >= 1


def test_churn_only_bites_with_membership_armed(report):
    off = report.row("membership-churn", "off")
    on = report.row("membership-churn", "on")
    assert off.mcounter("expiries") == 0
    assert on.mcounter("expiries") > 0
    assert on.mcounter("regions_demoted") > 0


def test_off_rows_carry_no_partition_counters(report):
    off = report.row("partition-blackhole", "off")
    assert off.partition_counters is None
    assert off.pcounter("partitions_started") == 0


def test_lines_render(report):
    lines = report.lines()
    assert any("partition-blackhole" in line for line in lines)
    assert any("membership-churn" in line for line in lines)


def test_registered_in_the_experiment_registry():
    spec = get("partition")
    assert spec.name == "partition"
    assert "robustness" in spec.tags
    assert spec.quick_kwargs["partition_epochs"] < \
        spec.full_kwargs["partition_epochs"]
