"""Tests for the experiments runner CLI (exit codes, report, manifest)."""

import json

import pytest

from repro.experiments import registry, runner
from repro.experiments.registry import ExperimentSpec

_MODULE = "tests.experiments.test_orchestrator"


@pytest.fixture()
def fake_ok_spec():
    spec = ExperimentSpec("__cli_ok", _MODULE, func="fake_ok")
    registry.register(spec)
    yield spec
    registry.unregister(spec.name)


@pytest.fixture()
def fake_boom_spec():
    spec = ExperimentSpec("__cli_boom", _MODULE, func="fake_boom")
    registry.register(spec)
    yield spec
    registry.unregister(spec.name)


class TestExitCodes:
    def test_only_without_match_exits_nonzero(self, capsys):
        rc = runner.main(["--only", "no-such-experiment"])
        assert rc == 2
        assert "no experiments match" in capsys.readouterr().err

    def test_tags_without_match_exits_nonzero(self):
        assert runner.main(["--tags", "no-such-tag"]) == 2

    def test_success_exits_zero(self, fake_ok_spec, capsys):
        rc = runner.main(["--only", "__cli_ok"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "=== __cli_ok" in out and "alpha" in out

    def test_failure_exits_one_with_full_traceback(self, fake_boom_spec,
                                                   capsys):
        rc = runner.main(["--only", "__cli_boom"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAILED (failed)" in out
        # The full traceback, not just the repr of the exception.
        assert "Traceback (most recent call last)" in out
        assert "ValueError: deterministic boom" in out
        assert "fake_boom" in out


class TestList:
    def test_list_shows_selected_specs(self, capsys):
        assert runner.main(["--list", "--only", "fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "seed" in out
        assert "fig16" not in out


class TestManifestFlag:
    def test_manifest_written(self, fake_ok_spec, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        rc = runner.main(["--only", "__cli_ok", "--manifest", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["counts"] == {"ok": 1}
        assert doc["mode"] == "sequential"
        (entry,) = doc["experiments"]
        assert entry["name"] == "__cli_ok"
        assert entry["lines"] == ["alpha", "beta"]

    def test_parallel_manifest_records_workers(self, fake_ok_spec,
                                               tmp_path, capsys):
        path = tmp_path / "manifest.json"
        rc = runner.main(["--only", "__cli_ok", "--parallel", "2",
                          "--manifest", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["mode"] == "parallel" and doc["workers"] == 2
