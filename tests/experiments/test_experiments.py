"""Smoke tests for every experiment at tiny scale.

Each experiment must run end to end, produce printable lines, and satisfy
the loosest form of its paper target (direction/ordering).
"""

import numpy as np
import pytest

from repro.experiments import (fig01_02_linkstates, fig03_badtime,
                               fig04_pricing, fig05_demand, fig07_similarity,
                               fig08_asymmetry, fig09_degradations,
                               fig11_weekly, fig12_prediction, fig13_qoe,
                               fig14_15_badcases, fig17_cost,
                               fig18_fast_reaction, fig19_asymmetric,
                               fig20_scaling, tab23_network)


def _has_lines(result):
    lines = result.lines()
    assert lines and all(isinstance(l, str) for l in lines)


class TestMotivationFigures:
    def test_fig01_02(self, full_underlay):
        r = fig01_02_linkstates.run(full_underlay, step_s=120.0)
        _has_lines(r)
        assert (r.avg_latency_premium.mean()
                < r.avg_latency_internet.mean())
        assert r.max_example_latency_ms > 1000.0

    def test_fig03(self, full_underlay):
        r = fig03_badtime.run(full_underlay, step_s=60.0)
        _has_lines(r)
        assert r.premium_high_latency.max() < 0.02
        assert r.internet_high_loss.max() > 0.1

    def test_fig04(self, full_underlay):
        r = fig04_pricing.run(full_underlay)
        _has_lines(r)
        assert 6.0 < r.median_ratio < 9.0
        assert r.max_ratio < 11.5

    def test_fig05(self):
        r = fig05_demand.run(slot_s=300.0)
        _has_lines(r)
        assert r.total_peak_ratio > 20
        assert r.example_peak_ratio > r.total_peak_ratio

    def test_fig07(self, full_underlay):
        r = fig07_similarity.run(full_underlay, window_s=3600.0,
                                 step_s=10.0, max_pairs=8)
        _has_lines(r)
        assert r.min_similarity > 0.5
        assert r.probe_reduction_factor == 8.0

    def test_fig08(self, full_underlay):
        r = fig08_asymmetry.run(full_underlay, window_s=14400.0, step_s=30.0)
        _has_lines(r)
        assert r.mean_fraction > 0.3  # paper: >60% for the example pair

    def test_fig09(self, full_underlay):
        r = fig09_degradations.run(full_underlay, window_s=86400.0)
        _has_lines(r)
        assert r.internet_short_long_ratio > 20
        assert sum(r.internet) > sum(r.premium)

    def test_fig11(self):
        r = fig11_weekly.run(slot_s=600.0)
        _has_lines(r)
        peaks = np.array(r.daily_peak_hours())
        assert peaks.shape[1] == 3
        assert r.weekend_weekday_ratio < 0.5

    def test_fig12(self):
        r = fig12_prediction.run(train_days=3, eval_days=1)
        _has_lines(r)
        assert r.correlation > 0.7
        assert r.mean_abs_error_of_peak < 0.15


class TestEvaluationExperiments:
    @pytest.fixture(scope="class")
    def qoe_cmp(self):
        return fig13_qoe.run(days=0.1, epoch_s=600.0, eval_step_s=30.0,
                             start_hour=6.0)

    def test_fig13(self, qoe_cmp):
        _has_lines(qoe_cmp)
        assert qoe_cmp.reduction_vs("stall_ratio") < 0.0
        assert set(qoe_cmp.summaries) == {"XRON", "Internet only",
                                          "Premium only"}

    def test_fig14_15_reuses_run(self, qoe_cmp):
        r = fig14_15_badcases.run(qoe_cmp)
        _has_lines(r)
        assert set(r.stall_buckets()) == set(qoe_cmp.summaries)

    def test_tab23(self):
        r = tab23_network.run(hours=0.5, eval_step_s=10.0)
        _has_lines(r)
        assert r.improvement("99.9%") > 1.0
        assert (r.latency_rows["Premium only"]["average"]
                < r.latency_rows["Internet only"]["average"])

    def test_fig18(self):
        r = fig18_fast_reaction.run(hours=0.5, eval_step_s=5.0)
        _has_lines(r)
        assert sum(r.counts["XRON"]) <= sum(r.counts["XRON-Basic"])

    def test_fig19(self, full_underlay):
        r = fig19_asymmetric.run(full_underlay, n_epochs=2)
        _has_lines(r)
        assert 0.0 <= r.fraction_improved <= 1.0
        assert np.all(r.speedups > 0)

    def test_fig20(self):
        r = fig20_scaling.run(days=4, warmup_days=1)
        _has_lines(r)
        assert r.mean_error("Proactive") <= r.mean_error("Reactive")

    def test_fig17(self):
        r = fig17_cost.run(hours=1.0, epoch_s=600.0, eval_step_s=60.0,
                           scaling_days=3)
        _has_lines(r)
        assert 1.0 <= r.normal_hop_mean < 2.0
        assert r.total_cost["Premium only"] > r.total_cost["XRON"]
        assert r.total_cost["XRON"] > r.total_cost["Internet only"]
