"""Tests for the declarative experiment registry."""

import pytest

from repro.experiments import registry
from repro.experiments.base import derive_seed
from repro.experiments.registry import ExperimentSpec


class TestRegistryContents:
    def test_canonical_suite_is_complete(self):
        names = [s.name for s in registry.all_specs()]
        assert names[0] == "fig01/02"
        assert "fig13" in names and "tab2/3" in names
        assert len(names) == len(set(names)) >= 22

    def test_every_spec_resolves_both_modes(self):
        for spec in registry.all_specs():
            assert callable(spec.resolve(full=False))
            assert callable(spec.resolve(full=True))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            registry.get("no-such-experiment")

    def test_quick_and_full_kwargs_diverge_where_declared(self):
        spec = registry.get("tab2/3")
        assert spec.kwargs(full=False) == {"hours": 3.0}
        assert spec.kwargs(full=True) == {"hours": 24.0}

    def test_fig13_switches_entrypoint_in_full_mode(self):
        spec = registry.get("fig13")
        assert spec.resolve(full=False).__name__ == "run"
        assert spec.resolve(full=True).__name__ == "run_long"


class TestSelect:
    def test_only_is_substring_match(self):
        names = [s.name for s in registry.select(only=["fig1"])]
        assert "fig11" in names and "fig13" in names
        assert "fig04" not in names

    def test_tags_filter(self):
        fast = registry.select(tags=["fast"])
        assert fast and all("fast" in s.tags for s in fast)

    def test_filters_compose(self):
        specs = registry.select(only=["ablation"], tags=["slow"])
        assert [s.name for s in specs] == ["ablation-stability"]

    def test_no_match_is_empty(self):
        assert registry.select(only=["zzz"]) == []


class TestSeeds:
    def test_derive_seed_is_stable_and_named(self):
        assert derive_seed("fig04") == derive_seed("fig04")
        assert derive_seed("fig04") != derive_seed("fig05")
        assert 0 <= derive_seed("fig04") < 2 ** 31

    def test_explicit_seed_wins(self):
        spec = ExperimentSpec("x", "math", seed=7)
        assert spec.resolved_seed() == 7

    def test_derived_seed_ignores_registry_order(self):
        for spec in registry.all_specs():
            if spec.seed is None:
                assert spec.resolved_seed() == derive_seed(spec.name)


class TestRegisterUnregister:
    def test_round_trip(self):
        spec = ExperimentSpec("__tmp", "math", func="sqrt")
        registry.register(spec)
        try:
            assert registry.get("__tmp") is spec
            replacement = ExperimentSpec("__tmp", "math", func="floor")
            registry.register(replacement)
            assert registry.get("__tmp") is replacement
            # Replacement keeps a single registry entry.
            assert [s.name for s in registry.all_specs()].count(
                "__tmp") == 1
        finally:
            registry.unregister("__tmp")
        with pytest.raises(KeyError):
            registry.get("__tmp")

    def test_unregister_missing_is_noop(self):
        registry.unregister("__never_registered")


class TestExecute:
    def test_execute_returns_lines(self):
        lines = registry.get("fig04").execute()
        assert lines and all(isinstance(line, str) for line in lines)

    def test_non_lines_result_rejected(self):
        spec = ExperimentSpec("__bad", "math", func="sqrt",
                              quick_kwargs={"x": 2.0})
        registry.register(spec)
        try:
            with pytest.raises(TypeError):
                spec.execute()
        finally:
            registry.unregister("__bad")
