"""Unit tests for figure-module helper logic on synthetic data."""

import numpy as np
import pytest

from repro.experiments.fig11_weekly import WeeklyDemandFigure
from repro.experiments.fig12_prediction import PredictionFigure
from repro.experiments.fig01_02_linkstates import LinkStateFigures
from repro.experiments.fig03_badtime import BadTimeCdf
from repro.experiments.fig07_similarity import SimilarityFigure
from repro.experiments.fig08_asymmetry import AsymmetryFigure
from repro.experiments.fig09_degradations import DegradationHistogram


class TestWeeklyPeakDetection:
    def _series(self, peak_hours, days=7, slot_s=600.0):
        t = np.arange(0, days * 86400.0, slot_s)
        h = (t / 3600.0) % 24.0
        day = (t // 86400.0).astype(int) % 7
        shape = sum(np.exp(-0.5 * ((h - p) / 1.0) ** 2) for p in peak_hours)
        weekend = np.where(day >= 5, 0.2, 1.0)
        return t, (shape + 0.01) * weekend

    def test_finds_three_synthetic_peaks(self):
        t, series = self._series([9.0, 14.0, 19.0])
        fig = WeeklyDemandFigure(t, series, ("A", "B"), slot_s=600.0)
        peaks = np.mean(np.array(fig.daily_peak_hours()), axis=0)
        np.testing.assert_allclose(peaks, [9.0, 14.0, 19.0], atol=1.0)

    def test_weekend_ratio(self):
        t, series = self._series([12.0], days=14)
        fig = WeeklyDemandFigure(t, series, ("A", "B"), slot_s=600.0)
        assert fig.weekend_weekday_ratio == pytest.approx(0.2, abs=0.05)

    def test_narrow_surge_does_not_mask_broad_peak(self):
        t, series = self._series([9.0, 14.0, 19.0])
        h = (t / 3600.0) % 24.0
        series = series + np.where((h >= 11.0) & (h < 11.2), 5.0, 0.0)
        fig = WeeklyDemandFigure(t, series, ("A", "B"), slot_s=600.0)
        peaks = np.mean(np.array(fig.daily_peak_hours()), axis=0)
        # The 12-minute spike must not displace the three broad peaks by
        # much (smoothing handles it).
        assert np.all(np.abs(peaks - [9.0, 14.0, 19.0]) < 2.5)


class TestPredictionFigureHelpers:
    def _fig(self, actual, predicted):
        n = len(actual)
        return PredictionFigure(np.arange(n, dtype=float),
                                np.asarray(actual, dtype=float),
                                np.asarray(predicted, dtype=float),
                                ("A", "B"))

    def test_perfect_prediction(self):
        fig = self._fig([1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0])
        assert fig.mean_abs_error_of_peak == 0.0
        assert fig.underprediction_fraction == 0.0
        assert fig.correlation == pytest.approx(1.0)

    def test_underprediction_fraction(self):
        fig = self._fig([10.0, 10.0, 10.0, 10.0], [11.0, 9.0, 11.0, 9.0])
        assert fig.underprediction_fraction == pytest.approx(0.5)


class TestFigureStatHelpers:
    def test_linkstate_maxima(self):
        fig = LinkStateFigures(
            times=np.arange(3), avg_latency_internet=np.array([1.0, 2, 3]),
            avg_latency_premium=np.array([1.0, 1, 1]),
            avg_loss_internet=np.array([0.01, 0.02, 0.033]),
            avg_loss_premium=np.zeros(3), example_pair=("A", "B"),
            example_latency_internet=np.array([100.0, 20000.0]),
            example_loss_internet=np.array([0.01, 0.392]))
        assert fig.max_example_latency_ms == 20000.0
        assert fig.max_avg_loss_pct == pytest.approx(3.3)
        assert fig.max_example_loss_pct == pytest.approx(39.2)

    def test_badtime_fraction_over(self):
        cdf = BadTimeCdf(np.array([0.05, 0.15, 0.25]),
                         np.array([0.1, 0.3, 0.5]),
                         np.zeros(3), np.zeros(3))
        assert cdf.fraction_of_links_over(cdf.internet_high_latency,
                                          0.10) == pytest.approx(2 / 3)

    def test_similarity_figure_stats(self):
        fig = SimilarityFigure(np.array([0.8, 0.92, 0.95]), 4, 2, 11)
        assert fig.min_similarity == pytest.approx(0.8)
        assert fig.fraction_over_90 == pytest.approx(2 / 3)
        assert fig.probe_reduction_factor == pytest.approx(8.0)

    def test_asymmetry_mean(self):
        fig = AsymmetryFigure(np.array([0.5, 0.7]), ("A", "B"), 0.7)
        assert fig.mean_fraction == pytest.approx(0.6)

    def test_degradation_ratio(self):
        hist = DegradationHistogram((90, 9, 1, 1), (1, 0, 0, 0), 1.0)
        assert hist.internet_short_long_ratio == pytest.approx(100.0)

    def test_degradation_ratio_no_long_events(self):
        hist = DegradationHistogram((10, 0, 0, 0), (0, 0, 0, 0), 1.0)
        assert hist.internet_short_long_ratio == 10.0
