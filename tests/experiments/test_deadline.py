"""Deadline coexistence tests: SIGALRM alarms vs asyncio loops (issue #9).

The orchestrator's `_deadline` uses ``SIGALRM``/``setitimer``; an
asyncio event loop (the serve mode) owns signal delivery in its thread.
These tests pin the truce: the alarm path refuses to arm under a
running loop, never leaves a stray handler or itimer behind, and the
cooperative `Deadline` covers the cases signals cannot.
"""

import asyncio
import signal
import time

import pytest

from repro.experiments.orchestrator import (Deadline, ExperimentTimeout,
                                            _deadline)


# ------------------------------------------------------ cooperative Deadline
def test_deadline_none_and_nonpositive_never_expire():
    for timeout in (None, 0, -1.0):
        deadline = Deadline(timeout)
        assert deadline.deadline is None
        assert not deadline.expired()
        deadline.check()  # no-op


def test_deadline_expires_and_raises():
    deadline = Deadline(0.001)
    time.sleep(0.01)
    assert deadline.expired()
    with pytest.raises(ExperimentTimeout, match="budget"):
        deadline.check()


def test_deadline_does_not_touch_signal_state():
    before = signal.getsignal(signal.SIGALRM)
    deadline = Deadline(10.0)
    deadline.check()
    assert signal.getsignal(signal.SIGALRM) is before


# ------------------------------------------------------------ SIGALRM alarms
def test_alarm_deadline_fires_outside_a_loop():
    before = signal.getsignal(signal.SIGALRM)
    with pytest.raises(ExperimentTimeout):
        with _deadline(0.05):
            time.sleep(1.0)
    # The handler and itimer were restored on the way out.
    assert signal.getsignal(signal.SIGALRM) is before
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


def test_alarm_deadline_is_noop_under_a_running_loop():
    """Under asyncio, `_deadline` must not arm: the loop owns signals."""

    async def main():
        before = signal.getsignal(signal.SIGALRM)
        with _deadline(0.01):
            time.sleep(0.05)  # would raise if the alarm had armed
            assert signal.getsignal(signal.SIGALRM) is before
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    asyncio.run(main())


def test_alarm_deadline_does_not_clobber_loop_signal_handlers():
    """A loop-installed handler survives a `_deadline` block."""
    hits = []

    async def main():
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGUSR1, lambda: hits.append(1))
        try:
            with _deadline(0.01):
                time.sleep(0.02)
            signal.raise_signal(signal.SIGUSR1)
            # Let the loop deliver the wakeup.
            for _ in range(10):
                await asyncio.sleep(0.01)
                if hits:
                    break
        finally:
            loop.remove_signal_handler(signal.SIGUSR1)

    asyncio.run(main())
    assert hits == [1]


def test_alarm_deadline_still_arms_after_a_loop_closed():
    """Leaving asyncio hands SIGALRM back to the alarm path."""

    async def main():
        with _deadline(0.05):
            pass  # no-op inside the loop

    asyncio.run(main())
    with pytest.raises(ExperimentTimeout):
        with _deadline(0.05):
            time.sleep(1.0)
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
