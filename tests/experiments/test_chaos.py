"""Smoke test for the chaos-reaction experiment."""

import pytest

from repro.experiments import chaos_reaction


@pytest.fixture(scope="module")
def result():
    return chaos_reaction.run(n_events=2)


def test_all_fault_classes_present(result):
    names = [s.name for s in result.scenarios]
    assert names == ["baseline", "controller-outage", "gateway-crash",
                     "probe-blackout", "report-drop", "install-chaos",
                     "provision-storm"]


def test_baseline_handles_everything_without_faults(result):
    baseline = result.scenario("baseline")
    assert baseline.fault_counters is None
    assert baseline.fault_injections == 0
    assert baseline.handled == baseline.injected == 2


def test_every_fault_scenario_actually_injected(result):
    for s in result.scenarios:
        if s.name == "baseline":
            continue
        assert s.fault_injections > 0, s.name


def test_controller_invisible_faults_keep_local_reaction(result):
    """§6.3: outages and NIB blindness must not cost the local loop."""
    baseline = result.scenario("baseline")
    for name in ("controller-outage", "report-drop"):
        scenario = result.scenario(name)
        assert scenario.handled == baseline.handled, name
        assert scenario.mean_failover_s == pytest.approx(
            baseline.mean_failover_s), name


def test_expected_counters_per_scenario(result):
    expect = {"controller-outage": "epochs_skipped",
              "gateway-crash": "gateways_crashed",
              "probe-blackout": "probes_blacked_out",
              "report-drop": "reports_dropped",
              "install-chaos": "installs_truncated",
              "provision-storm": "load_spikes_applied"}
    for name, counter in expect.items():
        assert result.scenario(name).fault_counters[counter] > 0, name


def test_blackout_delays_detection(result):
    """Losing the probing signal is the one fault that slows reaction."""
    baseline = result.scenario("baseline")
    blackout = result.scenario("probe-blackout")
    assert blackout.mean_failover_s > baseline.mean_failover_s


def test_lines_render(result):
    lines = result.lines()
    assert any("fault class" in line for line in lines)
    assert len(lines) > len(result.scenarios)
