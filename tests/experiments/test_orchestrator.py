"""Tests for the process-pool experiment orchestrator.

The fake experiments below live at module level so pool workers can
resolve them by ``module:func`` name.  The parallel tests rely on
fork-start workers (the orchestrator pins the ``fork`` context on
POSIX), which inherit specs registered by the test fixture.
"""

import json
import time

import pytest

from repro.experiments import orchestrator, registry
from repro.experiments.export import write_manifest
from repro.experiments.orchestrator import (STATUS_FAILED, STATUS_OK,
                                            STATUS_TIMEOUT,
                                            TransientExperimentError,
                                            execute_one, run_parallel,
                                            run_sequential)
from repro.experiments.registry import ExperimentSpec

_MODULE = __name__


def fake_ok():
    return ["alpha", "beta"]


def fake_sleepy():
    time.sleep(60.0)
    return ["never reached"]


def fake_boom():
    raise ValueError("deterministic boom")


def fake_flaky(flag):
    """Fails transiently on the first call, succeeds on the second.

    Cross-attempt (and cross-process) state lives in a flag file
    because retries may land in a different worker process.
    """
    import pathlib
    marker = pathlib.Path(flag)
    if not marker.exists():
        marker.write_text("attempted")
        raise TransientExperimentError("first attempt fails")
    return ["recovered"]


@pytest.fixture()
def fake_specs(tmp_path):
    """Register the fake experiments; always unregister afterwards."""
    flag = tmp_path / "flaky.flag"
    specs = [
        ExperimentSpec("__ok", _MODULE, func="fake_ok"),
        ExperimentSpec("__sleepy", _MODULE, func="fake_sleepy"),
        ExperimentSpec("__boom", _MODULE, func="fake_boom"),
        ExperimentSpec("__flaky", _MODULE, func="fake_flaky",
                       quick_kwargs={"flag": str(flag)}),
    ]
    for spec in specs:
        registry.register(spec)
    try:
        yield {s.name: s for s in specs}
    finally:
        for spec in specs:
            registry.unregister(spec.name)


class TestExecuteOne:
    def test_ok_record(self, fake_specs):
        record = execute_one("__ok")
        assert record.status == STATUS_OK and record.ok
        assert record.lines == ["alpha", "beta"]
        assert record.traceback is None
        assert record.seed == fake_specs["__ok"].resolved_seed()

    def test_failure_captures_full_traceback(self, fake_specs):
        record = execute_one("__boom")
        assert record.status == STATUS_FAILED and not record.ok
        assert not record.transient
        assert "ValueError: deterministic boom" in record.traceback
        assert "fake_boom" in record.traceback  # full stack, not repr

    def test_timeout_interrupts_in_process(self, fake_specs):
        t0 = time.perf_counter()
        record = execute_one("__sleepy", timeout_s=0.3)
        assert record.status == STATUS_TIMEOUT
        assert record.transient
        assert time.perf_counter() - t0 < 10.0


class TestParallel:
    def test_timeout_kill(self, fake_specs):
        t0 = time.perf_counter()
        records = run_parallel(["__sleepy", "__ok"], workers=2,
                               timeout_s=0.5, retries=0)
        assert time.perf_counter() - t0 < 30.0
        by_name = {r.name: r for r in records}
        assert by_name["__sleepy"].status == STATUS_TIMEOUT
        assert by_name["__ok"].status == STATUS_OK

    def test_retry_then_succeed(self, fake_specs):
        records = run_parallel(["__flaky"], workers=2, retries=1)
        (record,) = records
        assert record.status == STATUS_OK
        assert record.retries == 1
        assert record.lines == ["recovered"]

    def test_retries_exhausted(self, fake_specs, tmp_path):
        spec = ExperimentSpec(
            "__always_flaky", _MODULE, func="fake_flaky",
            quick_kwargs={"flag": str(tmp_path / "absent" / "nope")})
        registry.register(spec)
        try:
            (record,) = run_parallel(["__always_flaky"], workers=1,
                                     retries=2)
        finally:
            registry.unregister(spec.name)
        assert record.status == STATUS_FAILED
        assert record.retries == 2

    def test_deterministic_failure_not_retried(self, fake_specs):
        (record,) = run_parallel(["__boom"], workers=1, retries=3)
        assert record.status == STATUS_FAILED
        assert record.retries == 0
        assert "deterministic boom" in record.traceback

    def test_preserves_input_order(self, fake_specs):
        names = ["__boom", "__ok", "__sleepy"]
        records = run_parallel(names, workers=2, retries=0, timeout_s=0.5)
        assert [r.name for r in records] == names

    def test_on_record_fires_once_per_experiment(self, fake_specs):
        seen = []
        run_parallel(["__ok", "__flaky"], workers=2, retries=1,
                     on_record=lambda r: seen.append(r.name))
        assert sorted(seen) == ["__flaky", "__ok"]


class TestSequentialParallelEquality:
    def test_two_fast_experiments_byte_identical(self):
        names = ["fig04", "fig11"]
        seq = run_sequential(names)
        par = run_parallel(names, workers=2)
        assert [r.name for r in seq] == [r.name for r in par] == names
        for s, p in zip(seq, par):
            assert s.status == p.status == STATUS_OK
            assert s.lines == p.lines
            assert s.seed == p.seed


class TestManifest:
    def test_failure_manifest_entry(self, fake_specs, tmp_path):
        records = run_sequential(["__ok", "__boom"])
        path = write_manifest(records, tmp_path / "manifest.json",
                              suite="quick", mode="sequential",
                              workers=1, total_wall_s=1.234)
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["counts"] == {"failed": 1, "ok": 1}
        assert doc["total_wall_s"] == 1.234
        ok, boom = doc["experiments"]
        assert ok["name"] == "__ok" and ok["lines"] == ["alpha", "beta"]
        assert ok["traceback"] is None
        assert boom["status"] == "failed"
        assert "ValueError: deterministic boom" in boom["traceback"]
        assert isinstance(boom["seed"], int) and boom["retries"] == 0

    def test_manifest_is_diffable(self, fake_specs, tmp_path):
        """Two identical runs differ only in measured timings."""
        def scrub(doc):
            doc = json.loads(doc)
            doc["total_wall_s"] = 0
            for entry in doc["experiments"]:
                entry["wall_s"] = 0
            return doc

        a = write_manifest(run_sequential(["__ok"]), tmp_path / "a.json")
        b = write_manifest(run_sequential(["__ok"]), tmp_path / "b.json")
        assert scrub(a.read_text()) == scrub(b.read_text())


class TestDispatcher:
    def test_run_dispatches_on_parallel(self, fake_specs):
        seq = orchestrator.run(["__ok"], parallel=0)
        par = orchestrator.run(["__ok"], parallel=2)
        assert seq[0].lines == par[0].lines == ["alpha", "beta"]
