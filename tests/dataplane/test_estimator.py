"""Tests for link-state estimation and degradation detection."""

import numpy as np
import pytest

from repro.dataplane.config import MonitoringConfig, ReactionConfig
from repro.dataplane.estimator import (LinkStateEstimator,
                                       reaction_active_series)
from repro.dataplane.probing import ProbeBurst


def _estimator(**reaction_overrides):
    reaction = ReactionConfig(**reaction_overrides)
    return LinkStateEstimator(MonitoringConfig(), reaction)


def _burst(t, lat, lost):
    return ProbeBurst(t, lat, 15, lost)


class TestLinkStateEstimator:
    def test_estimate_before_samples_raises(self):
        with pytest.raises(RuntimeError):
            _estimator().estimate()

    def test_first_sample_initialises_ewma(self):
        est = _estimator()
        est.ingest_burst(_burst(0.0, 120.0, 0))
        lat, loss = est.estimate()
        assert lat == 120.0 and loss == 0.0

    def test_ewma_converges(self):
        est = _estimator()
        est.ingest_burst(_burst(0.0, 100.0, 0))
        for i in range(50):
            est.ingest_burst(_burst(i + 1.0, 200.0, 0))
        lat, __ = est.estimate()
        assert lat == pytest.approx(200.0, rel=0.01)

    def test_trigger_needs_consecutive_bad_bursts(self):
        est = _estimator(trigger_bursts=2)
        assert not est.ingest_burst(_burst(0.0, 900.0, 0))  # first bad
        assert est.ingest_burst(_burst(0.4, 900.0, 0))      # second: trigger

    def test_interrupted_bad_run_does_not_trigger(self):
        est = _estimator(trigger_bursts=2, ewma_loss_threshold=1.0)
        est.ingest_burst(_burst(0.0, 900.0, 0))
        est.ingest_burst(_burst(0.4, 100.0, 0))  # healthy: run resets
        assert not est.ingest_burst(_burst(0.8, 900.0, 0))

    def test_recovery_needs_consecutive_good_bursts(self):
        est = _estimator(trigger_bursts=1, recover_bursts=3,
                         ewma_loss_threshold=1.0)
        est.ingest_burst(_burst(0.0, 900.0, 0))
        assert est.degraded
        est.ingest_burst(_burst(0.4, 100.0, 0))
        est.ingest_burst(_burst(0.8, 100.0, 0))
        assert est.degraded  # only two good bursts so far
        est.ingest_burst(_burst(1.2, 100.0, 0))
        assert not est.degraded

    def test_burst_loss_triggers(self):
        est = _estimator(trigger_bursts=1)
        assert est.ingest_burst(_burst(0.0, 100.0, 5))  # 33% burst loss

    def test_ewma_loss_triggers_on_sustained_moderate_loss(self):
        est = _estimator(trigger_bursts=2, loss_threshold=0.5,
                         ewma_loss_threshold=0.02)
        # 1/15 = 6.7% per burst: below the burst threshold but the EWMA
        # climbs past 2% after a couple of bursts.
        degraded = False
        for i in range(10):
            degraded = est.ingest_burst(_burst(i * 0.4, 100.0, 1))
        assert degraded

    def test_degradation_count(self):
        est = _estimator(trigger_bursts=1, recover_bursts=1,
                         ewma_loss_threshold=1.0)
        for i in range(3):
            est.ingest_burst(_burst(i * 1.0, 900.0, 0))
            est.ingest_burst(_burst(i * 1.0 + 0.4, 100.0, 0))
        assert est.degradation_count == 3

    def test_passive_samples_feed_estimator(self):
        est = _estimator(trigger_bursts=1)
        est.ingest_passive(0.0, 500.0, 0.0)
        assert est.degraded
        assert est.last_update == 0.0

    def test_validation_of_hysteresis(self):
        with pytest.raises(ValueError):
            ReactionConfig(trigger_bursts=0)
        with pytest.raises(ValueError):
            ReactionConfig(ewma_alpha=2.0)


class TestReactionActiveSeries:
    def test_empty_series(self):
        flags = reaction_active_series(np.zeros(0), np.zeros(0),
                                       ReactionConfig())
        assert flags.size == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reaction_active_series(np.zeros(3), np.zeros(4), ReactionConfig())

    def test_all_healthy_never_active(self):
        lat = np.full(100, 100.0)
        loss = np.zeros(100)
        flags = reaction_active_series(lat, loss, ReactionConfig())
        assert not flags.any()

    def test_sustained_degradation_detected(self):
        lat = np.full(100, 100.0)
        lat[40:80] = 900.0
        flags = reaction_active_series(lat, np.zeros(100),
                                       ReactionConfig(trigger_bursts=2,
                                                      recover_bursts=4))
        # Trigger at the 2nd bad burst (index 41).
        assert not flags[40]
        assert flags[41:79].all()
        # Recovery after 4 good bursts: indices 80..82 still degraded.
        assert flags[82]
        assert not flags[84:].any()

    def test_matches_stateful_estimator(self):
        """The vectorised detector equals the burst-by-burst state machine."""
        rng = np.random.default_rng(7)
        n = 3000
        lat = np.where(rng.random(n) < 0.05, 900.0, 100.0)
        lost = (rng.random(n) < 0.04) * 4
        reaction = ReactionConfig(trigger_bursts=2, recover_bursts=6)

        est = LinkStateEstimator(MonitoringConfig(ewma_alpha=reaction.ewma_alpha),
                                 reaction)
        stateful = []
        for i in range(n):
            stateful.append(est.ingest_burst(
                ProbeBurst(i * 0.4, float(lat[i]), 15, int(lost[i]))))
        vectorised = reaction_active_series(lat, lost / 15.0, reaction)
        mismatch = np.mean(np.array(stateful) != vectorised)
        # The only allowed divergence is the EWMA first-sample seeding,
        # which can shift early flags; in steady state they agree.
        assert mismatch < 0.002

    def test_short_blip_ignored(self):
        lat = np.full(50, 100.0)
        lat[20] = 900.0  # single bad burst, trigger needs 2
        flags = reaction_active_series(lat, np.zeros(50),
                                       ReactionConfig(trigger_bursts=2))
        assert not flags.any()

    def test_trigger_one_reacts_immediately(self):
        lat = np.full(50, 100.0)
        lat[20:30] = 900.0
        flags = reaction_active_series(lat, np.zeros(50),
                                       ReactionConfig(trigger_bursts=1))
        assert flags[20]
