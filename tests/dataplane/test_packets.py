"""Tests for packet-level probing and the paper's loss-judgment rules."""

import numpy as np
import pytest

from repro.dataplane.config import MonitoringConfig
from repro.dataplane.packets import PacketLevelProber
from repro.underlay.config import UnderlayConfig
from repro.underlay.events import DegradationEvent
from repro.underlay.linkstate import LinkType
from repro.underlay.scenarios import inject_events, quiet_link
from repro.underlay.topology import build_underlay


@pytest.fixture()
def clean_link(small_regions):
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0),
                       seed=21)
    quiet_link(u, "HGH", "SIN", LinkType.INTERNET)
    link = u.link("HGH", "SIN", LinkType.INTERNET)
    link.base_loss = 0.0
    link.diurnal_loss_amp = 0.0
    return link


@pytest.fixture()
def lossy_link(small_regions):
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0),
                       seed=21)
    quiet_link(u, "HGH", "SIN", LinkType.INTERNET)
    inject_events(u, "HGH", "SIN", LinkType.INTERNET,
                  [DegradationEvent(0.0, 7000.0, 0.0, 0.2)])
    link = u.link("HGH", "SIN", LinkType.INTERNET)
    link.base_loss = 0.0
    link.diurnal_loss_amp = 0.0
    return link


def _drive(link, seconds, rng_seed=0, config=None):
    config = config or MonitoringConfig()
    prober = PacketLevelProber(link, config,
                               np.random.default_rng(rng_seed))
    judged = lost = 0
    delays = []
    t = 10.0
    end = 10.0 + seconds
    while t < end:
        prober.send_burst(t)
        burst = prober.collect(t)
        judged += burst.judged
        lost += burst.lost
        if burst.judged:
            delays.append(burst.mean_judgment_delay_s)
        t += config.burst_interval_s
    # Drain stragglers well past the last timeout.
    final = prober.collect(end + 10.0)
    judged += final.judged
    lost += final.lost
    return prober, judged, lost, delays


class TestCleanLink:
    def test_no_losses_judged(self, clean_link):
        prober, judged, lost, __ = _drive(clean_link, 10.0)
        assert lost == 0
        assert judged == prober.packets_sent
        assert prober.outstanding == 0

    def test_judgment_delay_is_about_one_rtt(self, clean_link):
        __, __, __, delays = _drive(clean_link, 10.0)
        rtt = 2.0 * clean_link.base_latency_ms / 1000.0
        assert np.mean(delays) == pytest.approx(rtt, rel=0.3)


class TestLossyLink:
    def test_measured_loss_matches_link_rate(self, lossy_link):
        """Per-packet judgments recover ~ the two-way loss probability."""
        prober, judged, lost, __ = _drive(lossy_link, 60.0, rng_seed=1)
        measured = lost / judged
        # Probe or reply lost: 1 - (1-p)^2 with p = 0.2.
        expected = 1.0 - 0.8 ** 2
        assert measured == pytest.approx(expected, abs=0.04)
        assert prober.outstanding == 0

    def test_all_packets_eventually_judged(self, lossy_link):
        prober, judged, __, __ = _drive(lossy_link, 20.0, rng_seed=2)
        assert judged == prober.packets_sent


class TestRuleOne:
    """Rule (i): >20 succeeding responses judge an outstanding probe lost."""

    def test_reordering_rule_fires_before_timeout(self, clean_link):
        config = MonitoringConfig(reorder_loss_threshold=20,
                                  loss_timeout_rtts=1000.0)  # disable (ii)
        prober = PacketLevelProber(clean_link, config,
                                   np.random.default_rng(3))
        # Send one burst and drop its first packet manually.
        prober.send_burst(10.0)
        prober._pending[0].response_time = None
        # 14 remaining responses are not enough; send more bursts until
        # more than 20 succeeding responses have arrived.
        prober.send_burst(10.4)
        burst = prober.collect(12.0)
        assert burst.lost == 1
        assert prober.outstanding == 0

    def test_rule_one_counts_only_succeeding(self, clean_link):
        config = MonitoringConfig(reorder_loss_threshold=20,
                                  loss_timeout_rtts=1000.0)
        prober = PacketLevelProber(clean_link, config,
                                   np.random.default_rng(3))
        prober.send_burst(10.0)
        # Drop the LAST packet: no succeeding responses ever arrive from
        # this burst, so rule (i) alone cannot judge it.
        prober._pending[-1].response_time = None
        prober.collect(12.0)
        assert prober.outstanding == 1


class TestRuleTwo:
    """Rule (ii): no response after three RTTs."""

    def test_timeout_judges_lost(self, clean_link):
        config = MonitoringConfig(reorder_loss_threshold=10_000)  # disable (i)
        prober = PacketLevelProber(clean_link, config,
                                   np.random.default_rng(4))
        prober.send_burst(10.0)
        prober._pending[-1].response_time = None
        rtt = 2.0 * clean_link.base_latency_ms / 1000.0
        early = prober.collect(10.0 + 2.0 * rtt)
        assert early.lost == 0  # not yet three RTTs
        late = prober.collect(10.5 + 3.5 * rtt)
        assert late.lost == 1

    def test_judged_at_records_timeout_instant(self, clean_link):
        config = MonitoringConfig(reorder_loss_threshold=10_000)
        prober = PacketLevelProber(clean_link, config,
                                   np.random.default_rng(4))
        prober.send_burst(10.0)
        packet = prober._pending[0]
        packet.response_time = None
        prober.collect(100.0)
        assert packet.judged_at == pytest.approx(
            packet.send_time + 3.0 * 2.0 * clean_link.base_latency_ms / 1000.0,
            rel=0.05)


def test_agrees_with_aggregate_prober(lossy_link):
    """The fast binomial approximation and the packet-level reference
    measure the same loss rate (the former models one-way loss; the
    packet prober loses probe or reply, so compare accordingly)."""
    from repro.dataplane.probing import ActiveProber
    config = MonitoringConfig()
    aggregate = ActiveProber(lossy_link, config, np.random.default_rng(5))
    agg_lost = agg_sent = 0
    t = 10.0
    while t < 70.0:
        burst = aggregate.probe(t)
        agg_lost += burst.lost
        agg_sent += burst.sent
        t += config.burst_interval_s
    one_way = agg_lost / agg_sent
    __, judged, lost, __ = _drive(lossy_link, 60.0, rng_seed=6)
    two_way = lost / judged
    assert two_way == pytest.approx(1 - (1 - one_way) ** 2, abs=0.05)
