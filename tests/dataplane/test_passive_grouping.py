"""Tests for passive tracking and group-based probing."""

import pytest

from repro.controlplane.nib import LinkReport
from repro.dataplane.grouping import ProbingGroupManager, probing_cost
from repro.dataplane.passive import PassiveTracker
from repro.underlay.linkstate import LinkType

LINK = ("A", "B", LinkType.INTERNET)


class TestPassiveTracker:
    def test_flush_requires_min_packets(self):
        tracker = PassiveTracker(min_packets=20)
        tracker.record(LINK, 10, 1, 100.0)
        assert tracker.flush(1.0) == []

    def test_flush_aggregates(self):
        tracker = PassiveTracker(min_packets=20)
        tracker.record(LINK, 50, 5, 100.0)
        tracker.record(LINK, 50, 0, 200.0)
        samples = tracker.flush(10.0)
        assert len(samples) == 1
        s = samples[0]
        assert s.loss_rate == pytest.approx(0.05)
        assert s.latency_ms == pytest.approx(150.0)
        assert s.packets == 100
        assert s.time == 10.0

    def test_flush_resets_windows(self):
        tracker = PassiveTracker(min_packets=1)
        tracker.record(LINK, 30, 0, 100.0)
        tracker.flush(1.0)
        assert tracker.flush(2.0) == []

    def test_links_tracked_separately(self):
        tracker = PassiveTracker(min_packets=1)
        other = ("B", "A", LinkType.PREMIUM)
        tracker.record(LINK, 30, 0, 100.0)
        tracker.record(other, 40, 4, 50.0)
        samples = {s.link: s for s in tracker.flush(1.0)}
        assert samples[LINK].loss_rate == 0.0
        assert samples[other].loss_rate == pytest.approx(0.1)

    def test_invalid_counts_rejected(self):
        tracker = PassiveTracker()
        with pytest.raises(ValueError):
            tracker.record(LINK, 5, 6, 10.0)
        with pytest.raises(ValueError):
            tracker.record(LINK, -1, 0, 10.0)

    def test_all_lost_window_has_zero_latency(self):
        tracker = PassiveTracker(min_packets=1)
        tracker.record(LINK, 30, 30, 0.0)
        samples = tracker.flush(1.0)
        assert samples[0].loss_rate == 1.0
        assert samples[0].latency_ms == 0.0

    def test_tracked_links_sorted(self):
        tracker = PassiveTracker()
        tracker.record(("B", "A", LinkType.INTERNET), 1, 0, 1.0)
        tracker.record(("A", "B", LinkType.INTERNET), 1, 0, 1.0)
        assert tracker.tracked_links[0][0] == "A"


class TestProbingCost:
    def test_full_mesh_quadratic_in_gateways(self):
        assert probing_cost(11, 10) == 11 * 10 * 100

    def test_grouped_independent_of_gateways(self):
        assert probing_cost(11, 10, representatives=2) == 11 * 10 * 2
        assert probing_cost(11, 1000, representatives=2) == 11 * 10 * 2

    def test_reduction_matches_paper_scaling(self):
        """O(N(N-1)M^2) -> O(N(N-1)R)."""
        full = probing_cost(11, 20)
        grouped = probing_cost(11, 20, representatives=2)
        assert full / grouped == pytest.approx(20 ** 2 / 2)

    def test_rejects_single_region(self):
        with pytest.raises(ValueError):
            probing_cost(1, 5)


class TestProbingGroupManager:
    def test_elect_lowest_ids(self):
        mgr = ProbingGroupManager(["A", "B"], representatives=2)
        assert mgr.elect("A", [7, 3, 9, 1]) == [1, 3]

    def test_elect_fewer_gateways_than_representatives(self):
        mgr = ProbingGroupManager(["A", "B"], representatives=3)
        assert mgr.elect("A", [5]) == [5]

    def test_elect_empty_rejected(self):
        mgr = ProbingGroupManager(["A", "B"])
        with pytest.raises(ValueError):
            mgr.elect("A", [])

    def test_rejects_zero_representatives(self):
        with pytest.raises(ValueError):
            ProbingGroupManager(["A"], representatives=0)

    def test_aggregate_median(self):
        mgr = ProbingGroupManager(["A", "B"], representatives=3)
        report = mgr.aggregate("A", "B", LinkType.INTERNET,
                               [(100.0, 0.01), (120.0, 0.02), (900.0, 0.5)],
                               now=5.0)
        assert isinstance(report, LinkReport)
        assert report.latency_ms == 120.0  # robust to the outlier
        assert report.loss_rate == 0.02
        assert report.reported_at == 5.0

    def test_aggregate_empty_rejected(self):
        mgr = ProbingGroupManager(["A", "B"])
        with pytest.raises(ValueError):
            mgr.aggregate("A", "B", LinkType.INTERNET, [], now=0.0)

    def test_aggregate_clips_loss(self):
        mgr = ProbingGroupManager(["A", "B"], representatives=1)
        report = mgr.aggregate("A", "B", LinkType.PREMIUM, [(10.0, -0.1)],
                               now=0.0)
        assert report.loss_rate == 0.0
