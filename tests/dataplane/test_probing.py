"""Tests for active probing."""

import numpy as np
import pytest

from repro.dataplane.config import MonitoringConfig
from repro.dataplane.probing import ActiveProber, ProbeBurst, burst_series
from repro.underlay.linkstate import LinkType


@pytest.fixture()
def link(small_underlay):
    a, b = small_underlay.pairs[0]
    return small_underlay.link(a, b, LinkType.INTERNET)


class TestProbeBurst:
    def test_loss_fraction(self):
        burst = ProbeBurst(0.0, 100.0, 15, 3)
        assert burst.loss_fraction == pytest.approx(0.2)

    def test_zero_sent(self):
        assert ProbeBurst(0.0, 0.0, 0, 0).loss_fraction == 0.0

    def test_bytes(self):
        assert ProbeBurst(0.0, 0.0, 15, 0).bytes_sent == 22500


class TestActiveProber:
    def test_measured_latency_close_to_truth(self, link, rng):
        prober = ActiveProber(link, MonitoringConfig(), rng)
        burst = prober.probe(100.0)
        truth = float(link.latency_ms(100.0))
        assert abs(burst.latency_ms - truth) / truth < 0.03

    def test_loss_draw_matches_rate(self, link, rng):
        prober = ActiveProber(link, MonitoringConfig(), rng)
        losses = [prober.probe(50.0).lost for __ in range(500)]
        expected = float(link.loss_rate(50.0)) * 15
        assert abs(np.mean(losses) - expected) < 0.5

    def test_accounting(self, link, rng):
        config = MonitoringConfig()
        prober = ActiveProber(link, config, rng)
        for i in range(10):
            prober.probe(float(i))
        assert prober.bursts_sent == 10
        assert prober.bytes_sent == 10 * 15 * 1500


class TestBurstSeries:
    def test_burst_cadence(self, link):
        config = MonitoringConfig(burst_interval_s=0.4)
        times, lat, loss = burst_series(link, 0.0, 60.0, config, seed=1)
        assert times.size == 150
        assert np.allclose(np.diff(times), 0.4)

    def test_empty_window_rejected(self, link):
        with pytest.raises(ValueError):
            burst_series(link, 10.0, 10.0, MonitoringConfig(), seed=1)

    def test_loss_fractions_in_unit_interval(self, link):
        __, __, loss = burst_series(link, 0.0, 600.0, MonitoringConfig(),
                                    seed=1)
        assert np.all(loss >= 0.0) and np.all(loss <= 1.0)

    def test_loss_quantised_to_packets(self, link):
        config = MonitoringConfig(packets_per_burst=15)
        __, __, loss = burst_series(link, 0.0, 600.0, config, seed=1)
        counts = loss * 15
        np.testing.assert_allclose(counts, np.round(counts), atol=1e-9)

    def test_deterministic_per_seed(self, link):
        config = MonitoringConfig()
        a = burst_series(link, 0.0, 60.0, config, seed=5)
        b = burst_series(link, 0.0, 60.0, config, seed=5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
        c = burst_series(link, 0.0, 60.0, config, seed=6)
        assert not np.allclose(a[1], c[1])

    def test_latency_tracks_link(self, link):
        __, lat, __ = burst_series(link, 0.0, 60.0, MonitoringConfig(),
                                   seed=1)
        truth = link.latency_ms(np.arange(0.0, 60.0, 0.4))
        assert np.all(np.abs(lat / truth - 1.0) <= 0.021)


class TestMonitoringConfigValidation:
    def test_bad_interval(self):
        with pytest.raises(ValueError):
            MonitoringConfig(burst_interval_s=0.0)

    def test_bad_packet_count(self):
        with pytest.raises(ValueError):
            MonitoringConfig(packets_per_burst=0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            MonitoringConfig(ewma_alpha=0.0)
