"""Tests for the event-mode gateway."""

import numpy as np
import pytest

from repro.dataplane.config import ReactionConfig
from repro.dataplane.gateway import Gateway
from repro.underlay.events import DegradationEvent
from repro.underlay.linkstate import LinkType
from repro.underlay.scenarios import inject_events, quiet_link
from repro.underlay.config import UnderlayConfig
from repro.underlay.topology import build_underlay

I = LinkType.INTERNET
P = LinkType.PREMIUM


@pytest.fixture()
def underlay(small_regions):
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0),
                       seed=11)
    # Quiet everything so detection tests are deterministic; individual
    # tests inject their own degradations.
    for (a, b) in u.pairs:
        for lt in (I, P):
            quiet_link(u, a, b, lt)
    return u


@pytest.fixture()
def gateway(underlay):
    gw = Gateway("HGH", 0, underlay,
                 reaction=ReactionConfig(trigger_bursts=2, recover_bursts=4),
                 rng=np.random.default_rng(0))
    gw.install_tables({1: ("SIN", I)}, {1: ("SIN",)})
    return gw


def test_probe_all_covers_both_tiers(gateway, underlay):
    bursts = gateway.probe_all(0.0)
    assert len(bursts) == (len(underlay.codes) - 1) * 2


def test_forward_normal_path(gateway):
    decision = gateway.forward(1)
    assert decision.next_hop == "SIN"
    assert decision.link_type is I
    assert not decision.via_backup


def test_forward_unknown_stream(gateway):
    assert gateway.forward(42) is None


def test_reaction_switches_to_backup(gateway, underlay):
    inject_events(underlay, "HGH", "SIN", I,
                  [DegradationEvent(10.0, 60.0, 5000.0, 0.3)])
    # Probe through the degradation: two bad bursts trigger.
    for k in range(10):
        gateway.probe_all(14.0 + k * 0.4)
    assert gateway.link_degraded("SIN", I)
    decision = gateway.forward(1)
    assert decision.via_backup
    assert decision.link_type is P
    assert decision.next_hop == "SIN"


def test_reaction_reverts_after_recovery(gateway, underlay):
    inject_events(underlay, "HGH", "SIN", I,
                  [DegradationEvent(10.0, 20.0, 5000.0, 0.3)])
    for k in range(20):
        gateway.probe_all(14.0 + k * 0.4)
    assert gateway.link_degraded("SIN", I)
    # Probe well after the event: the loss EWMA must decay below the
    # threshold first, then the recovery hysteresis clears the flag.
    for k in range(25):
        gateway.probe_all(40.0 + k * 0.4)
    assert not gateway.link_degraded("SIN", I)
    assert not gateway.forward(1).via_backup


def test_reaction_without_plan_uses_direct_premium(gateway, underlay):
    gateway.install_tables({1: ("SIN", I)}, {})  # no plans pushed
    inject_events(underlay, "HGH", "SIN", I,
                  [DegradationEvent(10.0, 60.0, 5000.0, 0.3)])
    for k in range(10):
        gateway.probe_all(14.0 + k * 0.4)
    decision = gateway.forward(1)
    assert decision.via_backup
    assert decision.next_hop == "SIN"
    assert decision.link_type is P


def test_multi_hop_plan_first_relay(gateway, underlay):
    gateway.install_tables({1: ("SIN", I)}, {1: ("FRA", "SIN")})
    inject_events(underlay, "HGH", "SIN", I,
                  [DegradationEvent(10.0, 60.0, 5000.0, 0.3)])
    for k in range(10):
        gateway.probe_all(14.0 + k * 0.4)
    decision = gateway.forward(1)
    assert decision.next_hop == "FRA"


def test_passive_tracking_flush(gateway):
    gateway.passive.record(("HGH", "SIN", I), 100, 1, 80.0)
    gateway.flush_passive(5.0)
    est = gateway.estimator("SIN", I)
    assert est.last_update == 5.0
    assert est.loss_rate == pytest.approx(0.01)


def test_passive_ignores_other_regions_links(gateway):
    gateway.passive.record(("SIN", "FRA", I), 100, 1, 80.0)
    gateway.flush_passive(5.0)
    with pytest.raises(RuntimeError):
        gateway.estimator("FRA", I).estimate()


def test_probe_accounting(gateway):
    gateway.probe_all(0.0)
    gateway.probe_all(0.4)
    assert gateway.probe_bytes_sent == 2 * 6 * 15 * 1500
