"""Tests for forwarding tables and effective-path evaluation."""

import numpy as np
import pytest

from repro.controlplane.model import OverlayPath
from repro.dataplane.forwarding import (ForwardingTable,
                                        effective_path_series)
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM


class TestForwardingTable:
    def test_install_and_lookup(self):
        table = ForwardingTable("A")
        table.install({1: ("B", I), 2: ("C", P)})
        assert table.lookup(1).next_hop == "B"
        assert table.lookup(2).link_type is P
        assert table.lookup(99) is None

    def test_install_replaces(self):
        table = ForwardingTable("A")
        table.install({1: ("B", I)})
        table.install({2: ("C", P)})
        assert table.lookup(1) is None
        assert len(table) == 1

    def test_version_increments(self):
        table = ForwardingTable("A")
        assert table.version == 0
        table.install({})
        table.install({})
        assert table.version == 2

    def test_entries_sorted_by_stream(self):
        table = ForwardingTable("A")
        table.install({5: ("B", I), 1: ("C", I)})
        assert [e.stream_id for e in table.entries()] == [1, 5]


def _series_env(lat_map, loss_map=None, reaction_map=None, n=10):
    """Build hop_series/reaction/plan functions over an n-sample grid."""
    loss_map = loss_map or {}
    reaction_map = reaction_map or {}
    times = np.arange(n, dtype=float)

    def hop_series(hop):
        lat = np.full(n, lat_map.get(hop, 100.0))
        loss = np.full(n, loss_map.get(hop, 0.0))
        return lat, loss

    def reaction(hop):
        return reaction_map.get(hop, np.zeros(n, dtype=bool))

    return times, hop_series, reaction


class TestEffectivePathSeries:
    def test_normal_path_sums_hops(self):
        path = OverlayPath.via(["A", "B", "C"], I)
        times, hs, ra = _series_env({("A", "B", I): 50.0,
                                     ("B", "C", I): 70.0})
        out = effective_path_series(path, times, hs, ra, lambda r: None)
        np.testing.assert_allclose(out.latency_ms, 120.0)
        assert not out.on_backup.any()

    def test_loss_compounds_along_path(self):
        path = OverlayPath.via(["A", "B", "C"], I)
        times, hs, ra = _series_env({}, {("A", "B", I): 0.1,
                                         ("B", "C", I): 0.2})
        out = effective_path_series(path, times, hs, ra, lambda r: None)
        np.testing.assert_allclose(out.loss_rate, 1 - 0.9 * 0.8)

    def test_reaction_switches_to_plan(self):
        path = OverlayPath.direct("A", "C", I)
        flags = np.zeros(10, dtype=bool)
        flags[4:8] = True
        times, hs, ra = _series_env(
            {("A", "C", I): 5000.0, ("A", "B", P): 60.0, ("B", "C", P): 60.0},
            reaction_map={("A", "C", I): flags})
        out = effective_path_series(path, times, hs, ra,
                                    lambda r: ("B", "C") if r == "A" else None)
        np.testing.assert_allclose(out.latency_ms[4:8], 120.0)
        np.testing.assert_allclose(out.latency_ms[:4], 5000.0)
        assert out.on_backup[4:8].all()
        assert out.backup_fraction == pytest.approx(0.4)

    def test_reaction_disabled_keeps_normal_path(self):
        path = OverlayPath.direct("A", "C", I)
        flags = np.ones(10, dtype=bool)
        times, hs, ra = _series_env({("A", "C", I): 5000.0},
                                    reaction_map={("A", "C", I): flags})
        out = effective_path_series(path, times, hs, ra,
                                    lambda r: ("C",), enable_reaction=False)
        np.testing.assert_allclose(out.latency_ms, 5000.0)
        assert not out.on_backup.any()

    def test_missing_plan_falls_back_to_direct_premium(self):
        path = OverlayPath.direct("A", "C", I)
        flags = np.ones(5, dtype=bool)
        times, hs, ra = _series_env({("A", "C", I): 5000.0,
                                     ("A", "C", P): 80.0},
                                    reaction_map={("A", "C", I): flags}, n=5)
        out = effective_path_series(path, times, hs, ra, lambda r: None)
        np.testing.assert_allclose(out.latency_ms, 80.0)

    def test_first_degraded_hop_wins(self):
        path = OverlayPath.via(["A", "B", "C"], I)
        f1 = np.ones(5, dtype=bool)   # hop A->B degraded
        f2 = np.ones(5, dtype=bool)   # hop B->C also degraded
        times, hs, ra = _series_env(
            {("A", "B", I): 1000.0, ("B", "C", I): 1000.0,
             ("A", "C", P): 90.0, ("B", "C", P): 70.0},
            reaction_map={("A", "B", I): f1, ("B", "C", I): f2}, n=5)

        def plan(region):
            return ("C",)

        out = effective_path_series(path, times, hs, ra, plan)
        # Switch happens at A (the first degraded hop): A->C premium.
        np.testing.assert_allclose(out.latency_ms, 90.0)

    def test_downstream_hop_reaction_keeps_healthy_prefix(self):
        path = OverlayPath.via(["A", "B", "C"], I)
        f2 = np.ones(5, dtype=bool)
        times, hs, ra = _series_env(
            {("A", "B", I): 40.0, ("B", "C", I): 1000.0,
             ("B", "C", P): 70.0},
            reaction_map={("B", "C", I): f2}, n=5)
        out = effective_path_series(path, times, hs, ra, lambda r: ("C",))
        # Prefix A->B Internet (40) plus backup B->C premium (70).
        np.testing.assert_allclose(out.latency_ms, 110.0)

    def test_planless_degraded_hop_does_not_mask_downstream(self):
        """Regression: a degraded first hop whose region has NO backup
        plan keeps forwarding normally — its degradation must not mask
        the downstream hop's own (plan-backed) reaction."""
        path = OverlayPath.via(["A", "B", "C"], I)
        f1 = np.ones(5, dtype=bool)   # hop A->B degraded, A has no plan
        f2 = np.ones(5, dtype=bool)   # hop B->C degraded, B reacts
        times, hs, ra = _series_env(
            {("A", "B", I): 40.0, ("B", "C", I): 1000.0,
             ("B", "C", P): 70.0},
            reaction_map={("A", "B", I): f1, ("B", "C", I): f2}, n=5)

        def plan(region):
            # An explicitly empty plan: region A cannot react at all
            # (distinct from None, which falls back to direct premium).
            return () if region == "A" else ("C",)

        out = effective_path_series(path, times, hs, ra, plan)
        # Traffic still flows A->B on the degraded Internet hop (40ms),
        # then B fires its own backup B->C premium (70ms).
        np.testing.assert_allclose(out.latency_ms, 110.0)
        assert out.on_backup.all()

    def test_backup_loss_replaces_remaining_hops(self):
        path = OverlayPath.direct("A", "C", I)
        flags = np.ones(4, dtype=bool)
        times, hs, ra = _series_env(
            {}, {("A", "C", I): 0.5, ("A", "C", P): 0.001},
            reaction_map={("A", "C", I): flags}, n=4)
        out = effective_path_series(path, times, hs, ra, lambda r: None)
        np.testing.assert_allclose(out.loss_rate, 0.001)
