"""Tests for region clusters and group-based probing distribution."""

import numpy as np
import pytest

from repro.dataplane.cluster import RegionCluster
from repro.dataplane.config import MonitoringConfig, ReactionConfig
from repro.underlay.config import UnderlayConfig
from repro.underlay.events import DegradationEvent
from repro.underlay.linkstate import LinkType
from repro.underlay.scenarios import inject_events, quiet_link
from repro.underlay.topology import build_underlay

I = LinkType.INTERNET
P = LinkType.PREMIUM


@pytest.fixture()
def underlay(small_regions):
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0),
                       seed=17)
    for (a, b) in u.pairs:
        for lt in (I, P):
            quiet_link(u, a, b, lt)
    return u


@pytest.fixture()
def cluster(underlay):
    return RegionCluster("HGH", underlay, initial_gateways=4,
                         monitoring=MonitoringConfig(representatives=2),
                         reaction=ReactionConfig(trigger_bursts=2,
                                                 recover_bursts=4),
                         rng=np.random.default_rng(3))


class TestFleet:
    def test_initial_size(self, cluster):
        assert cluster.size == 4

    def test_scale_up_adds_gateways(self, cluster):
        cluster.scale_to(6)
        assert cluster.size == 6

    def test_scale_down_removes_newest(self, cluster):
        cluster.scale_to(2)
        assert sorted(cluster.gateways) == [0, 1]

    def test_cannot_scale_to_zero(self, cluster):
        with pytest.raises(ValueError):
            cluster.scale_to(0)

    def test_new_gateways_inherit_tables(self, cluster):
        cluster.install({1: ("SIN", I)}, {1: ("SIN",)})
        cluster.scale_to(6)
        newest = cluster.gateways[max(cluster.gateways)]
        assert newest.table.lookup(1) is not None

    def test_representatives_are_stable_lowest_ids(self, cluster):
        reps = cluster.representatives()
        assert [g.gateway_id for g in reps] == [0, 1]
        cluster.scale_to(8)
        assert [g.gateway_id for g in cluster.representatives()] == [0, 1]

    def test_needs_at_least_one_gateway(self, underlay):
        with pytest.raises(ValueError):
            RegionCluster("HGH", underlay, initial_gateways=0)

    def test_new_gateways_inherit_reaction_plans(self, cluster):
        """Regression: scale-up must copy the sibling's reaction plans,
        not only its forwarding table — a fresh gateway without plans
        cannot fast-react until the next control epoch."""
        cluster.install({1: ("SIN", I)}, {1: ("FRA",)})
        cluster.scale_to(6)
        newest = cluster.gateways[max(cluster.gateways)]
        assert newest.reaction_plans() == {1: ("FRA",)}

    def test_crash_removes_lowest_ids_first(self, cluster):
        victims = cluster.crash_gateways(2, now=0.0)
        assert victims == [0, 1]
        assert sorted(cluster.gateways) == [2, 3]

    def test_crash_always_spares_one(self, cluster):
        victims = cluster.crash_gateways(99, now=0.0)
        assert len(victims) == 3
        assert cluster.size == 1

    def test_crash_normalizes_round_robin_cursor(self, cluster):
        """Regression: `crash_gateways` sparing one survivor must re-point
        the round-robin cursor into the shrunken fleet.  The cursor had
        been left wherever the pre-crash fleet advanced it, violating the
        `0 <= _rr_index < size` invariant for anything reading it raw."""
        cluster.install({1: ("SIN", I)}, {})
        for __ in range(7):  # advance the cursor beyond the post-crash size
            cluster.forward(1)
        cluster.crash_gateways(3, now=0.0)
        assert 0 <= cluster._rr_index < cluster.size
        survivor = next(iter(cluster.gateways.values()))
        resolved = cluster.resolve(1)
        assert resolved is not None and resolved[0] is survivor

    def test_restore_seeds_tables_and_plans(self, cluster):
        cluster.install({1: ("SIN", I)}, {1: ("FRA",)})
        cluster.crash_gateways(2, now=0.0)
        started = cluster.restore_gateways(2, now=30.0)
        assert len(started) == 2
        for gid in started:
            gateway = cluster.gateways[gid]
            assert gateway.table.lookup(1) is not None
            assert gateway.reaction_plans() == {1: ("FRA",)}


class TestGroupProbing:
    def test_probe_round_reports_all_links(self, cluster, underlay):
        reports = cluster.probe_round(0.0)
        assert len(reports) == (len(underlay.codes) - 1) * 2

    def test_only_representatives_send_probes(self, cluster):
        cluster.probe_round(0.0)
        bytes_by_gateway = {gid: g.probe_bytes_sent
                            for gid, g in cluster.gateways.items()}
        assert bytes_by_gateway[0] > 0 and bytes_by_gateway[1] > 0
        assert bytes_by_gateway[2] == 0 and bytes_by_gateway[3] == 0

    def test_group_state_distributed_to_members(self, cluster):
        cluster.probe_round(0.0)
        member = cluster.gateways[3]
        lat, loss = member.estimator("SIN", I).estimate()
        assert lat > 0  # adopted state despite never probing

    def test_degradation_verdict_distributed(self, cluster, underlay):
        inject_events(underlay, "HGH", "SIN", I,
                      [DegradationEvent(5.0, 60.0, 5000.0, 0.3)])
        for k in range(12):
            cluster.probe_round(9.0 + k * 0.4)
        # Every gateway (including non-representatives) must now react.
        for gateway in cluster.gateways.values():
            assert gateway.link_degraded("SIN", I)

    def test_reports_reflect_median_of_reps(self, cluster):
        reports = {(r.dst, r.link_type): r for r in cluster.probe_round(0.0)}
        report = reports[("SIN", I)]
        reps = cluster.representatives()
        lats = sorted(rep.estimator("SIN", I).estimate()[0] for rep in reps)
        assert lats[0] <= report.latency_ms <= lats[-1]


class TestForwarding:
    def test_round_robin_across_gateways(self, cluster):
        cluster.install({1: ("SIN", I)}, {})
        decisions = [cluster.forward(1) for __ in range(8)]
        assert all(d is not None and d.next_hop == "SIN" for d in decisions)

    def test_unknown_stream(self, cluster):
        assert cluster.forward(99) is None

    def test_resolve_reports_the_deciding_gateway(self, cluster):
        """Regression: passive samples must be booked on the gateway
        that made the round-robin decision, so `resolve` has to hand
        back every gateway in turn — not always the lowest id."""
        cluster.install({1: ("SIN", I)}, {})
        deciders = {cluster.resolve(1)[0].gateway_id
                    for __ in range(cluster.size)}
        assert deciders == set(cluster.gateways)

    def test_resolve_and_forward_agree(self, cluster):
        cluster.install({1: ("SIN", I)}, {})
        gateway, decision = cluster.resolve(1)
        assert decision.next_hop == "SIN"
        assert gateway.gateway_id in cluster.gateways

    def test_cluster_reaction_via_any_gateway(self, cluster, underlay):
        cluster.install({1: ("SIN", I)}, {1: ("SIN",)})
        inject_events(underlay, "HGH", "SIN", I,
                      [DegradationEvent(5.0, 60.0, 5000.0, 0.3)])
        for k in range(12):
            cluster.probe_round(9.0 + k * 0.4)
        for __ in range(cluster.size):
            decision = cluster.forward(1)
            assert decision.via_backup
            assert decision.link_type is P


class TestTelemetry:
    def test_probe_bytes_counted(self, cluster):
        cluster.probe_round(0.0)
        assert cluster.probe_bytes() > 0

    def test_detections_counted(self, cluster, underlay):
        assert cluster.degradation_detections() == 0
        inject_events(underlay, "HGH", "SIN", I,
                      [DegradationEvent(5.0, 60.0, 5000.0, 0.3)])
        for k in range(12):
            cluster.probe_round(9.0 + k * 0.4)
        assert cluster.degradation_detections() >= 1
