"""Tests for the fault injector's point queries."""

import numpy as np
import pytest

from repro.controlplane.nib import LinkReport
from repro.faults import (FaultInjector, FaultSchedule, controller_outage,
                          gateway_crash, install_delay, install_partial,
                          platform_load, probe_blackout, report_drop,
                          report_staleness, truncate_install)
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM


def _report(t, src="HGH", dst="SIN", lt=I):
    return LinkReport(src, dst, lt, 120.0, 0.01, t)


class TestControllerQueries:
    def test_outage_window(self):
        inj = FaultInjector(FaultSchedule.of(controller_outage(10.0, 20.0)))
        assert inj.controller_down(5.0) is None
        assert inj.controller_down(10.0) is not None
        assert inj.controller_down(20.0) is None

    def test_first_matching_outage_returned(self):
        early = controller_outage(0.0, 100.0)
        late = controller_outage(50.0, 60.0)
        inj = FaultInjector(FaultSchedule.of(late, early))
        assert inj.controller_down(55.0) is early


class TestProbeQueries:
    def test_link_scoped_blackout(self):
        inj = FaultInjector(FaultSchedule.of(
            probe_blackout(0.0, 10.0, region="HGH", dst="SIN", link_type=I)))
        assert inj.probe_blackout("HGH", "SIN", I, 5.0)
        assert not inj.probe_blackout("HGH", "SIN", P, 5.0)
        assert not inj.probe_blackout("HGH", "FRA", I, 5.0)
        assert not inj.probe_blackout("HGH", "SIN", I, 15.0)

    def test_region_blackout_requires_region_wide_spec(self):
        narrow = FaultInjector(FaultSchedule.of(
            probe_blackout(0.0, 10.0, region="HGH", dst="SIN")))
        wide = FaultInjector(FaultSchedule.of(
            probe_blackout(0.0, 10.0, region="HGH")))
        assert not narrow.region_blackout("HGH", 5.0)
        assert wide.region_blackout("HGH", 5.0)
        assert not wide.region_blackout("SIN", 5.0)


class TestReportFilter:
    def test_untouched_report_returned_by_identity(self):
        inj = FaultInjector(FaultSchedule.of(
            report_drop(100.0, 10.0, region="HGH")))
        report = _report(50.0)
        assert inj.filter_report(report) is report
        assert inj.counters.total() == 0

    def test_certain_drop_needs_no_rng(self):
        inj = FaultInjector(FaultSchedule.of(
            report_drop(0.0, 10.0, region="HGH")), rng=None)
        assert inj.filter_report(_report(5.0)) is None
        assert inj.counters.reports_dropped == 1

    def test_probabilistic_drop_uses_injector_rng(self):
        inj = FaultInjector(
            FaultSchedule.of(report_drop(0.0, 1000.0, probability=0.5)),
            rng=np.random.default_rng(7))
        results = [inj.filter_report(_report(float(t))) for t in range(200)]
        dropped = sum(r is None for r in results)
        assert 0 < dropped < 200
        assert inj.counters.reports_dropped == dropped

    def test_staleness_shifts_timestamp_into_the_past(self):
        inj = FaultInjector(FaultSchedule.of(
            report_staleness(0.0, 100.0, staleness_s=30.0)))
        out = inj.filter_report(_report(50.0))
        assert out is not None
        assert out.reported_at == 20.0
        assert out.latency_ms == 120.0  # payload untouched
        assert inj.counters.reports_staled == 1

    def test_staleness_clamped_at_zero(self):
        inj = FaultInjector(FaultSchedule.of(
            report_staleness(0.0, 100.0, staleness_s=1e6)))
        assert inj.filter_report(_report(50.0)).reported_at == 0.0


class TestInstallQueries:
    def test_delay_takes_the_max_of_matching_specs(self):
        inj = FaultInjector(FaultSchedule.of(
            install_delay(0.0, 10.0, delay_s=5.0),
            install_delay(0.0, 10.0, delay_s=20.0, region="HGH")))
        assert inj.install_delay("HGH", 5.0) == 20.0
        assert inj.install_delay("SIN", 5.0) == 5.0
        assert inj.install_delay("HGH", 15.0) == 0.0

    def test_keep_fraction_takes_the_min(self):
        inj = FaultInjector(FaultSchedule.of(
            install_partial(0.0, 10.0, keep_fraction=0.8),
            install_partial(0.0, 10.0, keep_fraction=0.25, region="HGH")))
        assert inj.install_keep_fraction("HGH", 5.0) == 0.25
        assert inj.install_keep_fraction("SIN", 5.0) == 0.8
        assert inj.install_keep_fraction("HGH", 50.0) == 1.0


class TestPlatformLoad:
    def test_load_is_one_outside_windows(self):
        inj = FaultInjector(FaultSchedule.of(
            platform_load(10.0, 10.0, load=8.0, region="SIN")))
        assert inj.platform_load("SIN", 5.0) == 1.0
        assert inj.platform_load("SIN", 15.0) == 8.0
        assert inj.platform_load("HGH", 15.0) == 1.0


class TestCrashWindows:
    def test_returns_only_crash_specs(self):
        crash = gateway_crash(10.0, 60.0, region="HGH", count=2)
        inj = FaultInjector(FaultSchedule.of(
            crash, controller_outage(0.0, 5.0)))
        assert inj.crash_windows() == [crash]


class TestTruncateInstall:
    def test_keeps_lowest_stream_ids(self):
        entries = {3: ("SIN", I), 1: ("FRA", P), 2: ("SIN", P), 9: ("FRA", I)}
        kept = truncate_install(entries, 0.5)
        assert sorted(kept) == [1, 2]
        assert kept[1] == ("FRA", P)

    @pytest.mark.parametrize("frac,expected", [
        (0.0, []), (0.24, []), (0.5, [1, 2]), (0.99, [1, 2, 3])])
    def test_fraction_floors(self, frac, expected):
        entries = {1: ("A", I), 2: ("B", I), 3: ("C", I), 4: ("D", I)}
        assert sorted(truncate_install(entries, frac)) == expected
