"""Integration tests: the fault schedule driving the event simulator."""

from dataclasses import replace

import pytest

from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.variants import xron
from repro.faults import (FaultSchedule, controller_outage, gateway_crash,
                          install_delay, install_partial, probe_blackout,
                          report_drop, report_staleness)
from repro.traffic.demand import DemandModel
from repro.underlay.config import UnderlayConfig
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.scenarios import quiet_link
from repro.underlay.topology import build_underlay


@pytest.fixture(scope="module")
def regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


def _build(regions, seed=5):
    config = UnderlayConfig(horizon_s=7200.0)
    config.internet.base_loss_min = 1e-6
    config.internet.base_loss_max = 1e-5
    config.internet.diurnal_loss_amp = 0.0
    for tier in (config.internet, config.premium):
        tier.short_events_per_day = 0.0
        tier.long_events_per_day = 0.0
    u = build_underlay(regions, config, seed=seed)
    for (a, b) in u.pairs:
        for lt in (LinkType.INTERNET, LinkType.PREMIUM):
            quiet_link(u, a, b, lt)
    return u, DemandModel(regions, seed=seed)


def _run(regions, seed=5, duration=90.0, **kwargs):
    u, d = _build(regions, seed=seed)
    sim = EventDrivenXRON(
        u, d,
        sim_config=SimulationConfig(epoch_s=30.0, eval_step_s=10.0,
                                    seed=seed, demand_scale=0.05),
        **kwargs)
    return sim, sim.run(3600.0, duration)


def _fingerprint(result):
    """Everything a fault-free run produces, as comparable values."""
    doc = {"events": result.events_processed,
           "probe_bytes": result.probe_bytes,
           "epochs": len(result.control_outputs),
           "gateways": dict(result.gateway_counts)}
    for pair, rec in sorted(result.sessions.items()):
        doc[pair] = (tuple(rec.times), tuple(rec.latency_ms),
                     tuple(rec.loss_rate), tuple(rec.on_backup))
    return doc


class TestNoFaultEquivalence:
    def test_empty_schedule_is_byte_identical_to_no_schedule(self, regions):
        __, plain = _run(regions)
        sim, empty = _run(regions, faults=FaultSchedule.empty())
        assert sim._injector is None  # no injector ever constructed
        assert _fingerprint(plain) == _fingerprint(empty)
        assert plain.fault_counters is None
        assert empty.fault_counters is None

    def test_same_schedule_same_seed_reproduces_exactly(self, regions):
        sched = FaultSchedule.of(
            controller_outage(3620.0, 3680.0),
            report_drop(3600.0, 90.0, probability=0.5),
            probe_blackout(3610.0, 20.0, region="HGH"))
        __, a = _run(regions, faults=sched)
        __, b = _run(regions, faults=sched)
        assert _fingerprint(a) == _fingerprint(b)
        assert a.fault_counters == b.fault_counters
        assert a.fault_counters["reports_dropped"] > 0


class TestControllerOutage:
    def test_epochs_skipped_and_sessions_survive(self, regions):
        sched = FaultSchedule.of(controller_outage(3601.0, 3700.0))
        sim, result = _run(regions, faults=sched)
        assert result.fault_counters["epochs_skipped"] == 3
        assert sim.skipped_epochs == 3
        # The bootstrap epoch ran; sessions were measured throughout.
        assert len(result.control_outputs) == 1
        assert any(rec.times for rec in result.sessions.values())

    def test_legacy_tuple_still_works_with_deprecation(self, regions):
        u, d = _build(regions)
        with pytest.deprecated_call():
            sim = EventDrivenXRON(
                u, d,
                sim_config=SimulationConfig(epoch_s=30.0, eval_step_s=10.0,
                                            seed=5, demand_scale=0.05),
                controller_outage=(3601.0, 3700.0))
        result = sim.run(3600.0, 90.0)
        assert sim.skipped_epochs == 3
        assert result.fault_counters["epochs_skipped"] == 3


class TestGatewayCrash:
    # Elastic capacity control would scale these tiny-demand clusters to
    # one gateway before the crash fires (and crash always spares one),
    # so the crash tests pin the fleet by disabling elasticity.
    FROZEN = None

    @classmethod
    def setup_class(cls):
        cls.FROZEN = replace(xron(), elastic=False)

    def test_crash_removes_and_restart_restores(self, regions):
        sched = FaultSchedule.of(
            gateway_crash(3610.0, 30.0, region="HGH", count=2))
        sim, result = _run(regions, faults=sched, variant=self.FROZEN)
        assert result.fault_counters["gateways_crashed"] == 2
        assert result.fault_counters["gateways_restarted"] == 2

    def test_no_restart_when_disabled(self, regions):
        sched = FaultSchedule.of(
            gateway_crash(3610.0, 30.0, region="HGH", count=1,
                          restart=False))
        __, result = _run(regions, faults=sched, variant=self.FROZEN)
        assert result.fault_counters["gateways_crashed"] == 1
        assert result.fault_counters["gateways_restarted"] == 0

    def test_replacement_gateways_inherit_reaction_plans(self, regions):
        sched = FaultSchedule.of(
            gateway_crash(3610.0, 30.0, region="HGH", count=1))
        sim, __ = _run(regions, faults=sched, variant=self.FROZEN)
        cluster = sim.clusters["HGH"]
        plans = [g.reaction_plans() for g in cluster.gateways.values()]
        assert all(p == plans[0] for p in plans)

    def test_at_least_one_gateway_survives(self, regions):
        sched = FaultSchedule.of(
            gateway_crash(3610.0, 30.0, region="HGH", count=99,
                          restart=False))
        sim, result = _run(regions, faults=sched, variant=self.FROZEN)
        assert all(c.size >= 1 for c in sim.clusters.values())


class TestProbeBlackout:
    def test_blackout_freezes_nib_reports(self, regions):
        sched = FaultSchedule.of(
            probe_blackout(3605.0, 1000.0, region="HGH"))
        sim, result = _run(regions, faults=sched)
        assert result.fault_counters["probes_blacked_out"] > 0
        nib = sim.controller.nib
        # HGH-sourced links stopped reporting at the blackout start;
        # other regions kept reporting until the end of the run.
        hgh = nib.get("HGH", "SIN", LinkType.INTERNET)
        sin = nib.get("SIN", "HGH", LinkType.INTERNET)
        assert hgh.reported_at < 3606.0
        assert sin.reported_at > 3680.0


class TestReportFaults:
    def test_drop_blinds_the_nib_not_the_gateways(self, regions):
        sched = FaultSchedule.of(report_drop(3605.0, 1000.0, region="HGH"))
        sim, result = _run(regions, faults=sched)
        assert result.fault_counters["reports_dropped"] > 0
        assert sim.controller.nib.get(
            "HGH", "SIN", LinkType.INTERNET).reported_at < 3606.0
        # Probing itself never stopped (the drop is on the NIB path).
        assert result.fault_counters["probes_blacked_out"] == 0

    def test_staleness_ages_reports(self, regions):
        sched = FaultSchedule.of(
            report_staleness(3605.0, 1000.0, staleness_s=500.0))
        sim, result = _run(regions, faults=sched)
        assert result.fault_counters["reports_staled"] > 0
        # Back-dated reports lose to the freshest pre-fault entry, so
        # the NIB's view freezes at the fault start instead of tracking
        # the run: only aging data arrives (§6.3's stale-NIB regime).
        report = sim.controller.nib.get("HGH", "SIN", LinkType.INTERNET)
        assert report.reported_at < 3605.0


class TestInstallFaults:
    def test_delay_counted_and_tables_eventually_land(self, regions):
        sched = FaultSchedule.of(
            install_delay(3601.0, 1000.0, delay_s=5.0, region="HGH"))
        sim, result = _run(regions, faults=sched)
        assert result.fault_counters["installs_delayed"] > 0
        assert sim.clusters["HGH"].current_entries()

    def test_partial_install_rides_stale_rows(self, regions):
        sched = FaultSchedule.of(
            install_partial(3601.0, 1000.0, keep_fraction=0.5))
        sim, result = _run(regions, faults=sched)
        assert result.fault_counters["installs_truncated"] > 0
        # Sessions keep being measured: lost rows fell back to the
        # bootstrap epoch's tables instead of vanishing.
        assert any(rec.times and max(rec.times) > 3660.0
                   for rec in result.sessions.values())

    def test_delay_and_partial_compose_on_the_same_epoch(self, regions):
        """Both install faults active over the same epochs: the update
        must be truncated first (stale rows merged in), THEN delayed —
        the late install that eventually lands is the truncated one,
        and a delayed stale update never overwrites a newer epoch's."""
        sched = FaultSchedule.of(
            install_partial(3601.0, 1000.0, keep_fraction=0.5),
            install_delay(3601.0, 1000.0, delay_s=5.0))
        sim, result = _run(regions, faults=sched, duration=150.0)
        assert result.fault_counters["installs_truncated"] > 0
        assert result.fault_counters["installs_delayed"] > 0
        # Every faulted epoch was both truncated and delayed, in every
        # region (region=None matches all three).
        assert (result.fault_counters["installs_truncated"]
                == result.fault_counters["installs_delayed"])
        # The delayed+truncated updates landed: tables exist everywhere
        # and sessions kept measuring past the second faulted epoch.
        assert all(c.current_entries() for c in sim.clusters.values())
        assert any(rec.times and max(rec.times) > 3660.0
                   for rec in result.sessions.values())
        # Monotonic install sequencing held despite the delays.
        assert all(seq <= sim._epoch_seq
                   for seq in sim._install_seq.values())


class TestPassiveAttribution:
    def test_passive_samples_land_on_the_deciding_gateway(self, regions):
        """Satellite regression: round-robin forwarding must book the
        passive window on the gateway that made the decision, so the
        samples spread across the fleet instead of piling onto the
        lowest id."""
        sim, __ = _run(regions, passive_flush_s=1e9, duration=60.0,
                       variant=replace(xron(), elastic=False))
        tracked_srcs = {pair[0] for pair, rec in sim.sessions.items()
                        if rec.times}
        assert tracked_srcs
        src = next(iter(tracked_srcs))
        with_windows = [g for g in sim.clusters[src].gateways.values()
                        if g.passive.tracked_links]
        assert len(with_windows) > 1
