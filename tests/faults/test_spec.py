"""Tests for the declarative fault specifications and schedules."""

import math
import warnings

import pytest

from repro.faults import (FaultKind, FaultSchedule, FaultSpec,
                          controller_outage, gateway_crash, install_delay,
                          install_partial, platform_load, probe_blackout,
                          report_drop, report_staleness)
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM


class TestFaultSpec:
    def test_end_and_active_window_is_half_open(self):
        spec = probe_blackout(100.0, 50.0, region="HGH")
        assert spec.end_s == 150.0
        assert not spec.active(99.9)
        assert spec.active(100.0)
        assert spec.active(149.9)
        assert not spec.active(150.0)

    def test_default_duration_is_open_ended(self):
        spec = report_drop(10.0, math.inf, region="HGH")
        assert math.isinf(spec.end_s)
        assert spec.active(1e12)

    def test_string_kind_and_link_type_coerced(self):
        spec = FaultSpec("probe_blackout", 0.0, 1.0, link_type="internet")
        assert spec.kind is FaultKind.PROBE_BLACKOUT
        assert spec.link_type is I

    def test_region_matching(self):
        assert probe_blackout(0.0, 1.0, region="HGH").matches_region("HGH")
        assert not probe_blackout(0.0, 1.0,
                                  region="HGH").matches_region("SIN")
        assert probe_blackout(0.0, 1.0).matches_region("SIN")  # wildcard

    def test_link_matching_narrows_by_dst_and_tier(self):
        spec = probe_blackout(0.0, 1.0, region="HGH", dst="SIN", link_type=I)
        assert spec.matches_link("HGH", "SIN", I)
        assert not spec.matches_link("HGH", "SIN", P)
        assert not spec.matches_link("HGH", "FRA", I)
        assert not spec.matches_link("SIN", "HGH", I)

    @pytest.mark.parametrize("bad", [
        lambda: FaultSpec(FaultKind.PROBE_BLACKOUT, math.inf, 1.0),
        lambda: FaultSpec(FaultKind.PROBE_BLACKOUT, 0.0, 0.0),
        lambda: FaultSpec(FaultKind.PROBE_BLACKOUT, 0.0, -5.0),
        lambda: gateway_crash(0.0, 1.0, region="HGH", count=0),
        lambda: report_drop(0.0, 1.0, probability=0.0),
        lambda: report_drop(0.0, 1.0, probability=1.5),
        lambda: report_staleness(0.0, 1.0, staleness_s=0.0),
        lambda: install_delay(0.0, 1.0, delay_s=0.0),
        lambda: install_partial(0.0, 1.0, keep_fraction=1.0),
        lambda: platform_load(0.0, 1.0, load=1.0),
        lambda: controller_outage(10.0, 10.0),
        lambda: FaultSpec(FaultKind.CONTROLLER_OUTAGE, 0.0, math.inf),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_json_round_trip(self):
        spec = report_drop(5.0, 20.0, region="HGH", dst="SIN",
                           link_type=P, probability=0.25)
        assert FaultSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_infinite_duration(self):
        spec = platform_load(5.0, math.inf, load=4.0, region="FRA")
        doc = spec.to_json()
        assert doc["duration_s"] is None  # inf is not valid JSON
        assert FaultSpec.from_json(doc) == spec


class TestFaultSchedule:
    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule.empty()
        assert len(FaultSchedule.empty()) == 0

    def test_specs_sorted_regardless_of_construction_order(self):
        a = probe_blackout(50.0, 1.0, region="HGH")
        b = controller_outage(10.0, 20.0)
        c = probe_blackout(50.0, 1.0, region="FRA")
        assert FaultSchedule.of(a, b, c).specs == \
            FaultSchedule.of(c, a, b).specs
        assert FaultSchedule.of(a, b, c).specs[0] is b  # earliest first
        # Same instant: ordered by (kind, region).
        assert [s.region for s in FaultSchedule.of(a, c).specs] == \
            ["FRA", "HGH"]

    def test_extended_returns_new_schedule(self):
        base = FaultSchedule.of(controller_outage(0.0, 5.0))
        extra = base.extended(probe_blackout(1.0, 2.0))
        assert len(base) == 1
        assert len(extra) == 2

    def test_by_kind_and_active(self):
        sched = FaultSchedule.of(
            controller_outage(0.0, 5.0),
            probe_blackout(2.0, 2.0, region="HGH"),
            probe_blackout(10.0, 2.0, region="HGH"))
        assert len(sched.by_kind(FaultKind.PROBE_BLACKOUT)) == 2
        assert len(sched.active(FaultKind.PROBE_BLACKOUT, 3.0)) == 1
        assert not sched.active(FaultKind.PROBE_BLACKOUT, 6.0)

    def test_schedule_json_round_trip(self):
        sched = FaultSchedule.of(
            gateway_crash(10.0, 60.0, region="HGH", count=2, restart=False),
            report_staleness(0.0, math.inf, staleness_s=30.0),
            controller_outage(5.0, 25.0))
        assert FaultSchedule.loads(sched.dumps()) == sched

    def test_from_json_dedupes_duplicate_specs_with_warning(self):
        crash = gateway_crash(10.0, 60.0, region="HGH")
        outage = controller_outage(5.0, 25.0)
        docs = [crash.to_json(), outage.to_json(), crash.to_json()]
        with pytest.warns(UserWarning, match="duplicate"):
            sched = FaultSchedule.from_json(docs)
        assert len(sched) == 2
        assert sched == FaultSchedule.of(crash, outage)

    def test_from_json_keeps_distinct_same_instant_specs(self):
        # Same kind + start but different regions are NOT duplicates.
        docs = [probe_blackout(2.0, 2.0, region="HGH").to_json(),
                probe_blackout(2.0, 2.0, region="SIN").to_json()]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sched = FaultSchedule.from_json(docs)
        assert len(sched) == 2
