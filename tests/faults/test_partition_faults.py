"""Tests for the partition/membership fault kinds and injector queries."""

import math

import numpy as np
import pytest

from repro.faults import (FaultKind, FaultSchedule, FaultSpec,
                          control_partition, gateway_crash, membership_churn,
                          probe_blackout)
from repro.faults.runtime import FaultCounters, FaultInjector


class TestControlPartitionSpec:
    def test_constructor_sorts_and_freezes_the_region_set(self):
        spec = control_partition(100.0, 60.0, ("SIN", "HGH"))
        assert spec.kind is FaultKind.CONTROL_PARTITION
        assert spec.regions == ("HGH", "SIN")
        assert spec.end_s == 160.0

    def test_severs_queries_the_region_set(self):
        spec = control_partition(0.0, 1.0, ("HGH", "SIN"))
        assert spec.severs("HGH")
        assert spec.severs("SIN")
        assert not spec.severs("FRA")

    def test_partition_needs_a_finite_window(self):
        with pytest.raises(ValueError, match="finite"):
            control_partition(0.0, math.inf, ("HGH",))

    def test_partition_needs_regions(self):
        with pytest.raises(ValueError, match="region"):
            control_partition(0.0, 1.0, ())

    def test_partition_rejects_duplicate_regions(self):
        with pytest.raises(ValueError):
            control_partition(0.0, 1.0, ("HGH", "HGH"))

    def test_regions_are_partition_only(self):
        with pytest.raises(ValueError, match="regions"):
            FaultSpec(FaultKind.PROBE_BLACKOUT, 0.0, 1.0,
                      regions=("HGH",))

    def test_round_trips_through_json(self):
        schedule = FaultSchedule.of(
            control_partition(10.0, 5.0, ("SIN", "HGH")),
            membership_churn(20.0, 5.0, region="FRA", probability=0.5))
        back = FaultSchedule.from_json(schedule.to_json())
        assert back.to_json() == schedule.to_json()
        assert back.specs[0].regions == ("HGH", "SIN")


class TestMembershipChurnSpec:
    def test_constructor(self):
        spec = membership_churn(5.0, 10.0, region="HGH", probability=0.25)
        assert spec.kind is FaultKind.MEMBERSHIP_CHURN
        assert spec.region == "HGH"
        assert spec.probability == 0.25

    @pytest.mark.parametrize("p", [0.0, -0.5, 1.5])
    def test_probability_must_be_in_unit_interval(self, p):
        with pytest.raises(ValueError):
            membership_churn(0.0, 1.0, probability=p)


class TestInjectorQueries:
    def _injector(self, *specs):
        return FaultInjector(FaultSchedule.of(*specs),
                             rng=np.random.default_rng(7))

    def test_active_partitions_in_schedule_order(self):
        a = control_partition(0.0, 100.0, ("HGH",))
        b = control_partition(50.0, 100.0, ("SIN", "FRA"))
        inj = self._injector(a, b)
        assert [s.regions for s in inj.active_partitions(60.0)] == [
            ("HGH",), ("FRA", "SIN")]
        assert inj.active_partitions(120.0) == [b]
        assert inj.active_partitions(200.0) == []

    def test_partition_regions_unions_active_windows(self):
        inj = self._injector(
            control_partition(0.0, 100.0, ("HGH",)),
            control_partition(50.0, 100.0, ("SIN", "FRA")))
        assert inj.partition_regions(60.0) == frozenset(
            {"HGH", "SIN", "FRA"})
        assert inj.partition_regions(500.0) == frozenset()

    def test_membership_churn_certain_probability_draws_no_rng(self):
        inj = self._injector(membership_churn(0.0, 10.0, region="HGH"))
        state = inj._rng.bit_generator.state
        assert inj.membership_churn("HGH", 5.0) is not None
        assert inj.membership_churn("SIN", 5.0) is None
        assert inj.membership_churn("HGH", 20.0) is None
        assert inj._rng.bit_generator.state == state

    def test_membership_churn_probabilistic_draws_only_inside_window(self):
        inj = self._injector(
            membership_churn(0.0, 10.0, region="HGH", probability=0.5))
        state = inj._rng.bit_generator.state
        assert inj.membership_churn("HGH", 50.0) is None  # window closed
        assert inj._rng.bit_generator.state == state
        hits = sum(inj.membership_churn("HGH", 5.0) is not None
                   for __ in range(200))
        assert 0 < hits < 200
        assert inj._rng.bit_generator.state != state

    def test_by_kind_covers_the_whole_taxonomy(self):
        counters = FaultCounters()
        counters.reports_severed = 3
        counters.installs_severed = 2
        counters.refreshes_churned = 7
        counters.gateways_crashed = 4
        counters.gateways_restarted = 1
        by_kind = counters.by_kind()
        assert set(by_kind) == {k.value for k in FaultKind}
        assert by_kind["control_partition"] == 5
        assert by_kind["membership_churn"] == 7
        assert by_kind["gateway_crash"] == 5

    def test_partition_counters_appear_in_as_dict(self):
        counters = FaultCounters()
        assert "reports_severed" in counters.as_dict()
        assert "installs_severed" in counters.as_dict()
        assert "refreshes_churned" in counters.as_dict()

    def test_mixed_schedule_buckets_new_kinds(self):
        inj = self._injector(
            gateway_crash(0.0, 10.0, "HGH", count=1),
            probe_blackout(0.0, 10.0, region="HGH"),
            control_partition(0.0, 10.0, ("HGH", "SIN")),
            membership_churn(0.0, 10.0))
        assert len(inj.active_partitions(5.0)) == 1
        assert inj.membership_churn("FRA", 5.0) is not None
