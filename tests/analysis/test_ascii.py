"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis.ascii import (ascii_cdf, histogram_bar, series_panel,
                                  sparkline)


class TestSparkline:
    def test_width(self):
        assert len(sparkline(np.sin(np.linspace(0, 7, 500)), width=40)) == 40

    def test_constant_series_is_flat(self):
        line = sparkline([5.0] * 100, width=20)
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_peak_survives_downsampling(self):
        v = np.ones(1000)
        v[500] = 100.0
        line = sparkline(v, width=10)
        assert "@" in line

    def test_monotone_series_monotone_chars(self):
        line = sparkline(np.arange(100.0), width=10)
        levels = [" .:-=+*#%@".index(c) for c in line]
        assert levels == sorted(levels)

    def test_log_scale_compresses_spikes(self):
        v = np.concatenate([np.full(30, 1.0), np.full(30, 100.0),
                            np.full(30, 1e6)])
        lin = sparkline(v, width=9)
        log = sparkline(v, width=9, log_scale=True)
        # Linearly, the middle decade is indistinguishable from the
        # bottom; on a log scale it sits halfway up.
        assert lin[3] == lin[0]
        assert log[3] != log[0]


class TestSeriesPanel:
    def test_contains_stats(self):
        lines = series_panel("demand", [1.0, 2.0, 3.0], unit=" Mbps")
        assert any("min 1" in l for l in lines)
        assert any("max 3" in l for l in lines)

    def test_empty(self):
        assert series_panel("x", []) == ["x: (no data)"]


class TestAsciiCdf:
    def test_shape(self):
        rows = ascii_cdf(np.random.default_rng(0).normal(0, 1, 500),
                         width=30, height=5, label="t")
        assert rows[0] == "t"
        assert len(rows) == 1 + 5 + 2  # label + levels + axis + ticks

    def test_full_level_row_is_solid_on_uniform(self):
        # For the lowest threshold row most columns are filled.
        rows = ascii_cdf(np.linspace(0, 1, 1000), width=20, height=4)
        bottom = rows[-3]
        assert bottom.count("#") >= 15

    def test_empty(self):
        assert ascii_cdf([]) == ["(no data)"]

    def test_too_small_plot_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf([1.0, 2.0], width=1)

    def test_log_axis_labels(self):
        rows = ascii_cdf([1.0, 10.0, 100.0], log_x=True)
        assert "(log x)" in rows[-1]

    def test_narrow_plot_has_no_middle_label(self):
        rows = ascii_cdf([1.0, 2.0], width=10, height=3)
        assert rows[-1].strip().startswith("1")


class TestHistogramBar:
    def test_bars_scale_with_counts(self):
        lines = histogram_bar([10, 5, 0], ["a", "b", "c"], width=10)
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 0

    def test_counts_rendered(self):
        lines = histogram_bar([7], ["bucket"], width=5)
        assert lines[0].endswith("7")

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            histogram_bar([1, 2], ["only-one"])
