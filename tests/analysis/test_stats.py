"""Tests for statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (cdf_points, normalize, percentile_row,
                                  resample_to_grid, weighted_percentiles)


class TestCdf:
    def test_sorted_and_fractions(self):
        v, f = cdf_points([3.0, 1.0, 2.0])
        np.testing.assert_allclose(v, [1, 2, 3])
        np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        v, f = cdf_points([])
        assert v.size == 0 and f.size == 0


class TestPercentileRow:
    def test_contains_expected_columns(self):
        row = percentile_row(np.arange(1000.0))
        assert set(row) == {"average", "50%", "95%", "99%", "99.9%"}
        assert row["average"] == pytest.approx(499.5)

    def test_custom_percentiles(self):
        row = percentile_row([1.0, 2.0, 3.0], percentiles=(50.0,))
        assert row["50%"] == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_row([])


class TestWeightedPercentiles:
    def test_equal_weights_match_unweighted_median(self):
        values = np.arange(101.0)
        w = np.ones(101)
        out = weighted_percentiles(values, w, [50.0])
        assert out[0] == pytest.approx(50.0, abs=1.0)

    def test_heavy_weight_dominates(self):
        values = np.array([1.0, 100.0])
        w = np.array([1.0, 99.0])
        out = weighted_percentiles(values, w, [50.0])
        assert out[0] == pytest.approx(100.0, abs=3.0)

    def test_result_bounded_by_values(self):
        values = np.array([5.0, 7.0, 9.0])
        w = np.array([1.0, 2.0, 3.0])
        out = weighted_percentiles(values, w, [0.0, 100.0])
        assert out[0] >= 5.0 and out[1] <= 9.0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            weighted_percentiles([1.0], [1.0, 2.0], [50.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_percentiles([1.0, 2.0], [1.0, -1.0], [50.0])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_percentiles([1.0, 2.0], [0.0, 0.0], [50.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_percentiles([], [], [50.0])


class TestResample:
    def test_last_value_wins(self):
        src_t = np.array([0.0, 10.0, 20.0])
        src_v = np.array([1.0, 2.0, 3.0])
        out = resample_to_grid(src_t, src_v, np.array([5.0, 10.0, 25.0]))
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_before_first_sample_clamps(self):
        out = resample_to_grid(np.array([10.0]), np.array([7.0]),
                               np.array([0.0]))
        assert out[0] == 7.0

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError):
            resample_to_grid(np.zeros(0), np.zeros(0), np.array([1.0]))


class TestNormalize:
    def test_scales_to_unit_peak(self):
        out = normalize([2.0, 4.0, 1.0])
        assert out.max() == 1.0
        np.testing.assert_allclose(out, [0.5, 1.0, 0.25])

    def test_zero_series_unchanged(self):
        np.testing.assert_allclose(normalize([0.0, 0.0]), [0.0, 0.0])

    def test_empty(self):
        assert normalize([]).size == 0
