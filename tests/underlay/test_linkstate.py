"""Tests for per-link latency/loss processes."""

import numpy as np
import pytest

from repro.underlay.events import DegradationEvent, EventTimeline
from repro.underlay.linkstate import (LinkProcess, LinkStateSample, LinkType,
                                      busy_factor)
from repro.underlay.regions import default_regions


def _make_link(events=(), horizon=86400.0, **overrides):
    regions = default_regions()
    kwargs = dict(base_latency_ms=100.0, jitter_sigma=0.05,
                  diurnal_latency_amp=0.2, base_loss=0.001,
                  diurnal_loss_amp=0.002, noise_seed=99)
    kwargs.update(overrides)
    timeline = EventTimeline.from_events(list(events), horizon)
    return LinkProcess(regions[0], regions[4], LinkType.INTERNET,
                       timeline=timeline, **kwargs)


class TestLinkStateSample:
    def test_good_state(self):
        s = LinkStateSample(100.0, 0.001)
        assert not s.is_bad()

    def test_bad_latency(self):
        assert LinkStateSample(500.0, 0.0).is_bad()

    def test_bad_loss(self):
        assert LinkStateSample(100.0, 0.01).is_bad()

    def test_custom_thresholds(self):
        s = LinkStateSample(150.0, 0.001)
        assert s.is_bad(high_latency_ms=100.0)


class TestBusyFactor:
    def test_range(self):
        h = np.linspace(0, 24, 1000)
        b = busy_factor(h)
        assert np.all(b >= 0.0) and np.all(b <= 1.0)

    def test_peak_mid_afternoon(self):
        assert busy_factor(15.5) == pytest.approx(1.0)

    def test_quiet_overnight(self):
        assert busy_factor(3.0) < 0.05

    def test_periodic(self):
        assert busy_factor(1.0) == pytest.approx(busy_factor(25.0))


class TestLinkProcess:
    def test_latency_near_base_without_events(self):
        link = _make_link(jitter_sigma=0.0, diurnal_latency_amp=0.0)
        t = np.arange(0, 3600, 10.0)
        np.testing.assert_allclose(link.latency_ms(t), 100.0)

    def test_loss_near_base_without_events(self):
        link = _make_link(diurnal_loss_amp=0.0)
        t = np.arange(0, 3600, 10.0)
        loss = link.loss_rate(t)
        # Lognormal jitter around base loss.
        assert 0.0005 < loss.mean() < 0.002

    def test_event_raises_latency(self):
        link = _make_link([DegradationEvent(1000.0, 60.0, 900.0, 0.2)],
                          jitter_sigma=0.0, diurnal_latency_amp=0.0)
        assert float(link.latency_ms(1030.0)) == pytest.approx(1000.0)

    def test_event_raises_loss(self):
        link = _make_link([DegradationEvent(1000.0, 60.0, 900.0, 0.2)])
        assert float(link.loss_rate(1030.0)) > 0.15

    def test_loss_clipped_to_unit_interval(self):
        link = _make_link([DegradationEvent(0.0, 100.0, 0.0, 0.95)],
                          base_loss=0.5)
        t = np.arange(0, 100, 1.0)
        assert np.all(link.loss_rate(t) <= 1.0)

    def test_diurnal_latency_follows_source_local_time(self):
        link = _make_link(jitter_sigma=0.0, diurnal_latency_amp=0.5)
        # Source HGH is UTC+8: local 15:30 is 07:30 UTC.
        peak = float(link.latency_ms(7.5 * 3600.0))
        trough = float(link.latency_ms(19.0 * 3600.0))  # local 03:00
        assert peak > trough * 1.3

    def test_sample_matches_series(self):
        link = _make_link()
        s = link.sample(500.0)
        assert s.latency_ms == pytest.approx(float(link.latency_ms(500.0)))
        assert s.loss_rate == pytest.approx(float(link.loss_rate(500.0)))

    def test_series_shape_and_grid(self):
        link = _make_link()
        times, lat, loss = link.series(0.0, 100.0, 10.0)
        assert times.shape == lat.shape == loss.shape == (10,)

    def test_series_rejects_empty_window(self):
        with pytest.raises(ValueError):
            _make_link().series(10.0, 10.0)

    def test_bad_fraction_counts_event_time(self):
        link = _make_link([DegradationEvent(0.0, 36000.0, 2000.0, 0.0)],
                          jitter_sigma=0.0, diurnal_latency_amp=0.0,
                          diurnal_loss_amp=0.0)
        frac_lat, __ = link.bad_fraction(0.0, 86400.0, 60.0)
        assert frac_lat == pytest.approx(36000.0 / 86400.0, abs=0.02)

    def test_quality_series_is_boolean(self):
        q = _make_link().quality_series(0.0, 600.0, 10.0)
        assert q.dtype == bool

    def test_horizon_exceeded_raises(self):
        link = _make_link(horizon=1000.0)
        with pytest.raises(ValueError):
            link.latency_ms(2000.0)

    def test_determinism(self):
        a = _make_link().latency_ms(np.arange(0, 100, 1.0))
        b = _make_link().latency_ms(np.arange(0, 100, 1.0))
        np.testing.assert_array_equal(a, b)

    def test_invalid_base_latency_rejected(self):
        with pytest.raises(ValueError):
            _make_link(base_latency_ms=0.0)

    def test_invalid_base_loss_rejected(self):
        with pytest.raises(ValueError):
            _make_link(base_loss=1.5)
