"""Tests for gateway-level link instances and the similarity metric."""

import numpy as np
import pytest

from repro.underlay.linkstate import LinkType
from repro.underlay.similarity import (GatewayLinkInstance,
                                       make_gateway_links,
                                       quality_similarity)


@pytest.fixture()
def pair_link(small_underlay):
    a, b = small_underlay.pairs[0]
    return small_underlay.link(a, b, LinkType.INTERNET)


def _links(pair_link, rng, n=3, rate=100.0):
    return make_gateway_links(
        pair_link, n, rng,
        idio_events_per_day=rate, idio_duration_mean_s=6.0,
        event_latency_mu=5.9, event_latency_sigma=1.2,
        event_loss_mu=-3.4, event_loss_sigma=1.0)


def test_requested_number_of_links(pair_link, rng):
    assert len(_links(pair_link, rng, n=5)) == 5


def test_zero_gateways_rejected(pair_link, rng):
    with pytest.raises(ValueError):
        _links(pair_link, rng, n=0)


def test_gateway_link_at_least_pair_severity(pair_link, rng):
    link = _links(pair_link, rng)[0]
    t = np.arange(0, 3600, 10.0)
    assert np.all(link.latency_ms(t) >= pair_link.latency_ms(t) - 1e-9)
    assert np.all(link.loss_rate(t) >= pair_link.loss_rate(t) - 1e-9)


def test_gateway_links_differ_from_each_other(pair_link, rng):
    links = _links(pair_link, rng, n=2, rate=2000.0)
    t = np.arange(0, 21600, 5.0)
    assert not np.allclose(links[0].latency_ms(t), links[1].latency_ms(t))


def test_loss_stays_clipped(pair_link, rng):
    links = _links(pair_link, rng, rate=3000.0)
    t = np.arange(0, 21600, 10.0)
    for link in links:
        assert np.all(link.loss_rate(t) <= 1.0)


def test_similarity_single_link_is_one(pair_link, rng):
    links = _links(pair_link, rng, n=1)
    assert quality_similarity(links, 0, 3600.0) == 1.0


def test_similarity_identical_links_is_one(pair_link):
    from repro.underlay.events import EventTimeline
    empty = EventTimeline.from_events([], pair_link.timeline.horizon_s)
    links = [GatewayLinkInstance(pair_link, empty, i) for i in range(3)]
    assert quality_similarity(links, 0, 3600.0, 10.0) == 1.0


def test_similarity_decreases_with_idiosyncrasy(pair_link):
    low = _links(pair_link, np.random.default_rng(0), n=4, rate=20.0)
    high = _links(pair_link, np.random.default_rng(0), n=4, rate=4000.0)
    s_low = quality_similarity(low, 0, 21600.0, 10.0)
    s_high = quality_similarity(high, 0, 21600.0, 10.0)
    assert s_high < s_low


def test_similarity_in_unit_interval(pair_link, rng):
    links = _links(pair_link, rng, n=4, rate=500.0)
    s = quality_similarity(links, 0, 21600.0, 10.0)
    assert 0.0 <= s <= 1.0


def test_paper_range_for_calibrated_settings(small_underlay):
    """With calibrated settings, similarity lands in the paper's >=77% zone."""
    cfg = small_underlay.config.similarity
    sims = []
    for (a, b) in small_underlay.pairs[:6]:
        pair = small_underlay.link(a, b, LinkType.INTERNET)
        links = make_gateway_links(
            pair, 4, np.random.default_rng(hash((a, b)) % 2**32),
            idio_events_per_day=cfg.idio_events_per_day,
            idio_duration_mean_s=cfg.idio_duration_mean_s,
            event_latency_mu=small_underlay.config.internet.event_latency_mu,
            event_latency_sigma=small_underlay.config.internet.event_latency_sigma,
            event_loss_mu=small_underlay.config.internet.event_loss_mu,
            event_loss_sigma=small_underlay.config.internet.event_loss_sigma,
            severity_scale=cfg.idio_severity_scale)
        sims.append(quality_similarity(links, 0, 21600.0, 10.0))
    assert min(sims) >= 0.77
