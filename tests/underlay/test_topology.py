"""Tests for the assembled underlay, including calibration targets."""

import numpy as np
import pytest

from repro.underlay.config import UnderlayConfig
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.topology import build_underlay


class TestConstruction:
    def test_all_directed_links_of_both_types(self, small_underlay):
        n = len(small_underlay.regions)
        for (a, b) in small_underlay.pairs:
            for lt in (LinkType.INTERNET, LinkType.PREMIUM):
                assert small_underlay.link(a, b, lt) is not None
        assert len(small_underlay.pairs) == n * (n - 1)

    def test_missing_link_raises(self, small_underlay):
        with pytest.raises(KeyError):
            small_underlay.link("HGH", "XXX", LinkType.INTERNET)

    def test_region_lookup(self, small_underlay):
        assert small_underlay.region("HGH").code == "HGH"
        with pytest.raises(KeyError):
            small_underlay.region("XXX")

    def test_rejects_single_region(self):
        with pytest.raises(ValueError):
            build_underlay(default_regions()[:1])

    def test_deterministic_given_seed(self, small_regions):
        cfg = UnderlayConfig(horizon_s=3600.0)
        u1 = build_underlay(small_regions, cfg, seed=9)
        u2 = build_underlay(small_regions, cfg, seed=9)
        t = np.arange(0, 3600, 60.0)
        for (a, b) in u1.pairs:
            np.testing.assert_array_equal(
                u1.link(a, b, LinkType.INTERNET).latency_ms(t),
                u2.link(a, b, LinkType.INTERNET).latency_ms(t))

    def test_seed_changes_underlay(self, small_regions):
        cfg = UnderlayConfig(horizon_s=3600.0)
        u1 = build_underlay(small_regions, cfg, seed=1)
        u2 = build_underlay(small_regions, cfg, seed=2)
        t = np.arange(0, 3600, 60.0)
        a, b = u1.pairs[0]
        assert not np.allclose(
            u1.link(a, b, LinkType.INTERNET).latency_ms(t),
            u2.link(a, b, LinkType.INTERNET).latency_ms(t))

    def test_directions_are_independent(self, small_underlay):
        t = np.arange(0, 3600, 30.0)
        a, b = small_underlay.pairs[0]
        fwd = small_underlay.link(a, b, LinkType.INTERNET).latency_ms(t)
        rev = small_underlay.link(b, a, LinkType.INTERNET).latency_ms(t)
        assert not np.allclose(fwd, rev)


class TestCalibration:
    """Reproduction targets from §2.2 (Figs. 1-3, 8, 9)."""

    @pytest.fixture(scope="class")
    def day(self):
        return np.arange(0.0, 86400.0, 60.0)

    def test_premium_latency_below_internet(self, full_underlay, day):
        ilat = full_underlay.average_latency(LinkType.INTERNET, day)
        plat = full_underlay.average_latency(LinkType.PREMIUM, day)
        assert plat.mean() < ilat.mean() * 0.6

    def test_premium_latency_is_stable(self, full_underlay, day):
        plat = full_underlay.average_latency(LinkType.PREMIUM, day)
        assert plat.std() / plat.mean() < 0.05

    def test_internet_latency_fluctuates(self, full_underlay, day):
        ilat = full_underlay.average_latency(LinkType.INTERNET, day)
        assert ilat.max() > ilat.min() * 1.5

    def test_premium_loss_tiny(self, full_underlay, day):
        ploss = full_underlay.average_loss(LinkType.PREMIUM, day)
        assert ploss.mean() < 0.001

    def test_internet_loss_significant(self, full_underlay, day):
        iloss = full_underlay.average_loss(LinkType.INTERNET, day)
        assert 0.002 < iloss.mean() < 0.05

    def test_fig3_internet_tail(self, full_underlay):
        """~20% of Internet links spend >10% of time with high latency."""
        fracs = np.array([
            link.bad_fraction(0, 86400.0, 30.0)[0]
            for link in full_underlay.links_of_type(LinkType.INTERNET)])
        assert 0.08 < np.mean(fracs > 0.10) < 0.40

    def test_fig3_premium_near_zero(self, full_underlay):
        fracs = [link.bad_fraction(0, 86400.0, 60.0)
                 for link in full_underlay.links_of_type(LinkType.PREMIUM)]
        assert max(f[0] for f in fracs) < 0.01
        assert max(f[1] for f in fracs) < 0.01

    def test_fig9_short_long_ratio(self, full_underlay):
        """Short degradations ~two orders of magnitude more than long."""
        hist = np.zeros(4, dtype=int)
        for link in full_underlay.links_of_type(LinkType.INTERNET):
            hist += np.array(link.timeline.duration_histogram())
        ratio = hist[:3].sum() / max(hist[3], 1)
        assert 40 < ratio < 400

    def test_internet_spikes_reach_many_seconds(self, full_underlay):
        t = np.arange(0.0, 86400.0, 5.0)
        worst = max(float(link.latency_ms(t).max())
                    for link in full_underlay.links_of_type(LinkType.INTERNET))
        assert worst > 5000.0  # paper's example pair peaks at ~20.5 s
