"""Tests for scripted underlay scenarios."""

import numpy as np
import pytest

from repro.underlay.linkstate import LinkType
from repro.underlay.scenarios import (inject_events, long_term_degradation,
                                      quiet_link,
                                      short_frequent_degradations)


def test_long_term_degradation_single_event():
    events = long_term_degradation(100.0, 400.0, latency_add_ms=500.0)
    assert len(events) == 1
    assert events[0].start == 100.0
    assert events[0].duration == 300.0


def test_long_term_rejects_empty_window():
    with pytest.raises(ValueError):
        long_term_degradation(100.0, 100.0)


def test_short_frequent_spacing():
    events = short_frequent_degradations(0.0, 1000.0, period_s=200.0,
                                         duration_s=10.0)
    assert len(events) == 5
    starts = [e.start for e in events]
    assert starts == [0.0, 200.0, 400.0, 600.0, 800.0]


def test_short_frequent_rejects_empty_window():
    with pytest.raises(ValueError):
        short_frequent_degradations(10.0, 10.0)


def test_inject_replaces_timeline(small_regions):
    from repro.underlay.config import UnderlayConfig
    from repro.underlay.topology import build_underlay
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0), seed=4)
    a, b = u.pairs[0]
    inject_events(u, a, b, LinkType.INTERNET,
                  long_term_degradation(1000.0, 2000.0,
                                        latency_add_ms=5000.0))
    link = u.link(a, b, LinkType.INTERNET)
    assert len(link.timeline) == 1
    assert float(link.latency_ms(1500.0)) > 4000.0


def test_inject_keep_existing_extends(small_regions):
    from repro.underlay.config import UnderlayConfig
    from repro.underlay.topology import build_underlay
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0), seed=4)
    a, b = u.pairs[0]
    before = len(u.link(a, b, LinkType.INTERNET).timeline)
    inject_events(u, a, b, LinkType.INTERNET,
                  long_term_degradation(1000.0, 2000.0), keep_existing=True)
    assert len(u.link(a, b, LinkType.INTERNET).timeline) == before + 1


def test_quiet_link_removes_all_events(small_regions):
    from repro.underlay.config import UnderlayConfig
    from repro.underlay.topology import build_underlay
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0), seed=4)
    a, b = u.pairs[1]
    quiet_link(u, a, b, LinkType.INTERNET)
    link = u.link(a, b, LinkType.INTERNET)
    assert len(link.timeline) == 0
    t = np.arange(0, 3600, 10.0)
    assert np.all(link.timeline.latency_add(t) == 0.0)
