"""Tests for regions and geography."""

import math

import pytest

from repro.underlay.regions import (Region, all_ordered_pairs,
                                    default_regions, great_circle_km,
                                    propagation_delay_ms)


def test_default_deployment_has_eleven_regions():
    assert len(default_regions()) == 11


def test_default_regions_span_four_continents():
    continents = {r.continent for r in default_regions()}
    assert len(continents) == 4


def test_region_codes_are_unique():
    codes = [r.code for r in default_regions()]
    assert len(set(codes)) == len(codes)


def test_great_circle_is_symmetric():
    a, b = default_regions()[:2]
    assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))


def test_great_circle_zero_for_same_point():
    a = default_regions()[0]
    assert great_circle_km(a, a) == pytest.approx(0.0)


def test_great_circle_known_distance():
    by_code = {r.code: r for r in default_regions()}
    # Hangzhou <-> Singapore is roughly 3,400 km.
    d = great_circle_km(by_code["HGH"], by_code["SIN"])
    assert 3000 < d < 4000


def test_great_circle_antipodal_bounded():
    a = Region("x", "X", 0.0, 0.0, 0.0, "T")
    b = Region("y", "Y", 0.0, 180.0, 0.0, "T")
    assert great_circle_km(a, b) == pytest.approx(math.pi * 6371.0, rel=1e-6)


def test_propagation_delay_scales_with_stretch():
    a, b = default_regions()[0], default_regions()[4]
    d1 = propagation_delay_ms(a, b, 1.0)
    d2 = propagation_delay_ms(a, b, 2.0)
    assert d2 == pytest.approx(2 * d1)


def test_propagation_delay_rejects_stretch_below_one():
    a, b = default_regions()[:2]
    with pytest.raises(ValueError):
        propagation_delay_ms(a, b, 0.9)


def test_propagation_delay_plausible_for_transpacific():
    by_code = {r.code: r for r in default_regions()}
    # Tokyo -> Virginia one-way fibre delay should be tens of ms.
    d = propagation_delay_ms(by_code["TYO"], by_code["IAD"], 1.0)
    assert 40 < d < 80


def test_all_ordered_pairs_count():
    regions = default_regions()[:4]
    pairs = all_ordered_pairs(regions)
    assert len(pairs) == 4 * 3
    assert ("HGH", "HGH") not in pairs


def test_all_ordered_pairs_directional():
    pairs = all_ordered_pairs(default_regions()[:3])
    assert ("HGH", "BJS") in pairs and ("BJS", "HGH") in pairs


def test_utc_offsets_cover_day():
    offsets = {r.utc_offset for r in default_regions()}
    assert max(offsets) - min(offsets) >= 12
