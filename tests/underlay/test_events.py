"""Tests for degradation-event timelines."""

import numpy as np
import pytest

from repro.underlay.events import (DegradationEvent, EventTimeline,
                                   MAX_EVENT_LATENCY_MS, generate_timeline)


def _timeline(events, horizon=1000.0):
    return EventTimeline.from_events(events, horizon)


class TestDegradationEvent:
    def test_end(self):
        e = DegradationEvent(10.0, 5.0, 100.0, 0.01)
        assert e.end == 15.0

    def test_is_short_boundary(self):
        assert DegradationEvent(0, 29.9, 1, 0).is_short
        assert not DegradationEvent(0, 30.0, 1, 0).is_short

    def test_ramp_capped(self):
        long_event = DegradationEvent(0, 100.0, 1, 0)
        assert long_event.ramp_s == 3.0
        short_event = DegradationEvent(0, 4.0, 1, 0)
        assert short_event.ramp_s == pytest.approx(1.4)


class TestEventTimeline:
    def test_empty_timeline_is_zero(self):
        tl = _timeline([])
        assert tl.latency_add(5.0) == 0.0
        assert tl.loss_add(np.array([1.0, 2.0])).tolist() == [0.0, 0.0]
        assert len(tl) == 0

    def test_zero_before_first_event(self):
        tl = _timeline([DegradationEvent(100.0, 10.0, 500.0, 0.1)])
        assert tl.latency_add(50.0) == 0.0

    def test_peak_severity_mid_event(self):
        tl = _timeline([DegradationEvent(100.0, 20.0, 500.0, 0.1)])
        assert tl.latency_add(110.0) == pytest.approx(500.0, rel=1e-6)
        assert tl.loss_add(110.0) == pytest.approx(0.1, rel=1e-6)

    def test_zero_after_event(self):
        tl = _timeline([DegradationEvent(100.0, 20.0, 500.0, 0.1)])
        assert tl.latency_add(121.0) == pytest.approx(0.0, abs=1e-9)

    def test_ramp_up_is_partial(self):
        # Event from t=100, duration 20 -> ramp = 3 s.
        tl = _timeline([DegradationEvent(100.0, 20.0, 600.0, 0.3)])
        half_ramp = tl.latency_add(101.5)
        assert 0.0 < half_ramp < 600.0
        assert half_ramp == pytest.approx(300.0, rel=1e-6)

    def test_ramp_down_mirrors_up(self):
        tl = _timeline([DegradationEvent(100.0, 20.0, 600.0, 0.3)])
        assert tl.latency_add(118.5) == pytest.approx(
            tl.latency_add(101.5), rel=1e-9)

    def test_overlapping_events_sum(self):
        tl = _timeline([DegradationEvent(100.0, 30.0, 400.0, 0.05),
                        DegradationEvent(110.0, 30.0, 300.0, 0.05)])
        mid = tl.latency_add(118.0)  # both at full severity
        assert mid == pytest.approx(700.0, rel=1e-6)

    def test_severity_never_negative(self):
        tl = _timeline([DegradationEvent(10.0 * i, 5.0, 100.0, 0.01)
                        for i in range(50)])
        t = np.linspace(0, 600, 4001)
        assert np.all(tl.latency_add(t) >= 0)
        assert np.all(tl.loss_add(t) >= 0)

    def test_vectorised_matches_scalar(self):
        tl = _timeline([DegradationEvent(5.0, 12.0, 250.0, 0.2),
                        DegradationEvent(30.0, 40.0, 100.0, 0.01)])
        times = np.linspace(0, 100, 101)
        vec = tl.latency_add(times)
        scal = np.array([float(tl.latency_add(t)) for t in times])
        np.testing.assert_allclose(vec, scal)

    def test_events_property_round_trips(self):
        events = [DegradationEvent(5.0, 12.0, 250.0, 0.2),
                  DegradationEvent(1.0, 4.0, 100.0, 0.01)]
        tl = _timeline(events)
        out = tl.events
        assert len(out) == 2
        # Sorted by start time.
        assert out[0].start == 1.0 and out[1].start == 5.0

    def test_active_events(self):
        tl = _timeline([DegradationEvent(10.0, 10.0, 1.0, 0.0),
                        DegradationEvent(15.0, 10.0, 2.0, 0.0)])
        active = tl.active_events(16.0)
        assert len(active) == 2
        assert len(tl.active_events(5.0)) == 0
        assert len(tl.active_events(21.0)) == 1

    def test_duration_histogram_buckets(self):
        tl = _timeline([DegradationEvent(0, 5.0, 1, 0),
                        DegradationEvent(10, 15.0, 1, 0),
                        DegradationEvent(30, 25.0, 1, 0),
                        DegradationEvent(60, 100.0, 1, 0),
                        DegradationEvent(200, 9.0, 1, 0)])
        assert tl.duration_histogram() == (2, 1, 1, 1)

    def test_duration_histogram_empty(self):
        assert _timeline([]).duration_histogram() == (0, 0, 0, 0)


class TestGenerateTimeline:
    def _gen(self, rng, horizon=10 * 86400.0, **overrides):
        kwargs = dict(short_events_per_day=100.0, long_events_per_day=1.0,
                      short_duration_mean_s=8.0, long_duration_mu=4.5,
                      long_duration_sigma=1.0, event_latency_mu=5.5,
                      event_latency_sigma=1.2, event_loss_mu=-3.5,
                      event_loss_sigma=1.0)
        kwargs.update(overrides)
        return generate_timeline(rng, horizon, **kwargs)

    def test_counts_scale_with_rate(self, rng):
        tl = self._gen(rng)
        hist = tl.duration_histogram()
        short = sum(hist[:3])
        # ~1000 short events expected over 10 days.
        assert 800 < short < 1200
        assert 3 < hist[3] < 30

    def test_rate_scale_multiplies_counts(self, rng):
        base = len(self._gen(np.random.default_rng(1)))
        scaled = len(self._gen(np.random.default_rng(1), rate_scale=3.0))
        assert scaled > 2.0 * base

    def test_short_events_stay_short(self, rng):
        tl = self._gen(rng, long_events_per_day=0.0)
        assert tl.duration_histogram()[3] == 0

    def test_long_events_exceed_30s(self, rng):
        tl = self._gen(rng, short_events_per_day=0.0,
                       long_events_per_day=10.0)
        assert np.all(tl.durations >= 30.0)

    def test_latency_capped(self, rng):
        tl = self._gen(rng, event_latency_mu=12.0, severity_scale=5.0)
        assert np.all(tl.latency_adds <= MAX_EVENT_LATENCY_MS)

    def test_loss_capped(self, rng):
        tl = self._gen(rng, event_loss_mu=3.0, severity_scale=10.0)
        assert np.all(tl.loss_adds <= 0.95)

    def test_events_within_offset_window(self, rng):
        tl = self._gen(rng, horizon=86400.0, start_offset=1000.0)
        assert np.all(tl.starts >= 1000.0)
        assert tl.horizon_s == pytest.approx(86400.0 + 1000.0)

    def test_rejects_non_positive_horizon(self, rng):
        with pytest.raises(ValueError):
            self._gen(rng, horizon=0.0)

    def test_deterministic_for_same_generator_state(self):
        a = self._gen(np.random.default_rng(42))
        b = self._gen(np.random.default_rng(42))
        np.testing.assert_array_equal(a.starts, b.starts)
        np.testing.assert_array_equal(a.latency_adds, b.latency_adds)
