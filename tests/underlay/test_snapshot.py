"""`LinkStateSnapshot`: vectorised builds and batched path metrics.

The contract under test is *bit-exactness*: the matrix snapshot must
reproduce the scalar `LinkProcess` / `LinkStateFn` results down to the
last ULP, because the golden-equivalence suite pins whole control
outputs on it.  Every comparison here is `==`, never `pytest.approx`.
"""

import numpy as np
import pytest

from repro.controlplane.model import (OverlayPath, path_latency_ms,
                                      path_loss_rate)
from repro.underlay.linkstate import LinkType
from repro.underlay.snapshot import TYPE_INDEX, TYPE_ORDER, LinkStateSnapshot

I, P = LinkType.INTERNET, LinkType.PREMIUM


def scalar_state(underlay, now):
    def state(a, b, t):
        link = underlay.link(a, b, t)
        return (float(link.latency_ms(now)), float(link.loss_rate(now)))
    return state


class TestFromUnderlay:
    @pytest.mark.parametrize("now", [0.0, 3600.0, 12345.6, 6 * 3600.0])
    def test_bit_identical_to_link_processes(self, small_underlay, now):
        snap = small_underlay.snapshot(now)
        codes = small_underlay.codes
        for t in TYPE_ORDER:
            for a in codes:
                for b in codes:
                    if a == b:
                        continue
                    link = small_underlay.link(a, b, t)
                    ti, i, j = TYPE_INDEX[t], snap.index[a], snap.index[b]
                    assert snap.lat[ti, i, j] == float(link.latency_ms(now))
                    assert snap.loss[ti, i, j] == float(link.loss_rate(now))

    def test_diagonal_is_missing(self, small_underlay):
        snap = small_underlay.snapshot(100.0)
        n = len(snap.codes)
        for ti in range(2):
            for i in range(n):
                assert snap.lat[ti, i, i] == np.inf
                assert snap.loss[ti, i, i] == 1.0

    def test_beyond_horizon_raises_like_link_process(self, small_underlay):
        beyond = small_underlay.config.horizon_s + 10.0
        with pytest.raises(ValueError, match="horizon"):
            small_underlay.snapshot(beyond)
        some_link = small_underlay.link(*small_underlay.pairs[0], I)
        with pytest.raises(ValueError, match="horizon"):
            some_link.latency_ms(beyond)

    def test_param_arrays_are_cached(self, small_underlay):
        assert (small_underlay.link_param_arrays()
                is small_underlay.link_param_arrays())


class TestFromFnAndEnsure:
    def test_from_fn_matches_callback(self, small_underlay):
        now = 1800.0
        state = scalar_state(small_underlay, now)
        snap = LinkStateSnapshot.from_fn(small_underlay.codes, state, t=now)
        for t in TYPE_ORDER:
            for (a, b) in small_underlay.pairs:
                assert snap.lookup(a, b, t) == state(a, b, t)

    def test_ensure_passes_snapshot_through(self, small_underlay):
        snap = small_underlay.snapshot(60.0)
        assert LinkStateSnapshot.ensure(snap, small_underlay.codes) is snap

    def test_ensure_rejects_mismatched_codes(self, small_underlay):
        snap = small_underlay.snapshot(60.0)
        with pytest.raises(ValueError, match="do not match"):
            LinkStateSnapshot.ensure(snap, list(reversed(snap.codes)))

    def test_ensure_wraps_callback(self, small_underlay):
        now = 60.0
        snap = LinkStateSnapshot.ensure(scalar_state(small_underlay, now),
                                        small_underlay.codes)
        assert isinstance(snap, LinkStateSnapshot)
        a, b = small_underlay.codes[:2]
        assert snap.lookup(a, b, P) == scalar_state(small_underlay, now)(
            a, b, P)

    def test_empty_snapshot(self):
        snap = LinkStateSnapshot.empty(["A", "B"])
        assert snap.lookup("A", "B", I) == (np.inf, 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="must be"):
            LinkStateSnapshot(["A", "B"], np.zeros((2, 3, 3)),
                              np.zeros((2, 3, 3)))


class TestPathMetrics:
    @pytest.fixture(scope="class")
    def snap_and_state(self, small_underlay):
        now = 2400.0
        return (small_underlay.snapshot(now),
                scalar_state(small_underlay, now))

    @pytest.fixture(scope="class")
    def paths(self, small_underlay):
        a, b, c, d = small_underlay.codes
        return [
            OverlayPath.direct(a, b, I),
            OverlayPath.direct(b, a, P),
            OverlayPath.via((a, c, b), P),
            OverlayPath(((a, d, I), (d, c, P), (c, b, I))),
            OverlayPath.via((d, b, a, c), I),
        ]

    def test_scalar_metrics_match_model_functions(self, snap_and_state,
                                                  paths):
        snap, state = snap_and_state
        for path in paths:
            assert snap.path_latency_ms(path) == path_latency_ms(path, state)
            assert snap.path_loss_rate(path) == path_loss_rate(path, state)

    def test_model_functions_dispatch_on_snapshot(self, snap_and_state,
                                                  paths):
        snap, state = snap_and_state
        for path in paths:
            assert path_latency_ms(path, snap) == path_latency_ms(path, state)
            assert path_loss_rate(path, snap) == path_loss_rate(path, state)

    def test_batched_metrics_match_scalar(self, snap_and_state, paths):
        """Mixed-length batch: padding must not perturb a single bit."""
        snap, __ = snap_and_state
        lat = snap.paths_latency_ms(paths)
        loss = snap.paths_loss_rate(paths)
        for k, path in enumerate(paths):
            assert lat[k] == snap.path_latency_ms(path)
            assert loss[k] == snap.path_loss_rate(path)

    def test_batched_metrics_empty(self, snap_and_state):
        snap, __ = snap_and_state
        assert snap.paths_latency_ms([]).shape == (0,)
        assert snap.paths_loss_rate([]).shape == (0,)

    def test_direct_latency_gather(self, snap_and_state, small_underlay):
        snap, state = snap_and_state
        srcs = [a for (a, b) in small_underlay.pairs]
        dsts = [b for (a, b) in small_underlay.pairs]
        got = snap.direct_latency(srcs, dsts, P)
        for k, (a, b) in enumerate(small_underlay.pairs):
            assert got[k] == state(a, b, P)[0]
        assert snap.direct_latency([], [], P).shape == (0,)

    def test_state_fn_roundtrip(self, snap_and_state):
        snap, __ = snap_and_state
        fn = snap.state_fn()
        rebuilt = LinkStateSnapshot.from_fn(snap.codes, fn)
        assert np.array_equal(rebuilt.lat, snap.lat)
        assert np.array_equal(rebuilt.loss, snap.loss)


class TestSnapshotDelta:
    def test_self_delta_is_empty(self, small_underlay):
        snap = small_underlay.snapshot(100.0)
        delta = snap.delta(snap)
        assert delta.is_empty()
        assert delta.n_changed() == 0
        assert delta.changed_links() == []
        assert delta.changed.shape == (2, len(snap.codes), len(snap.codes))

    def test_equal_values_are_empty_even_across_objects(self, small_underlay):
        a = small_underlay.snapshot(100.0)
        b = small_underlay.snapshot(100.0)
        assert a is not b
        assert b.delta(a).is_empty()

    def test_missing_link_in_both_never_flags(self, small_underlay):
        """inf == inf on the diagonal (and absent links) is not a change."""
        a = small_underlay.snapshot(100.0)
        b = small_underlay.snapshot(100.0)
        delta = b.delta(a)
        n = len(a.codes)
        for k in range(2):
            for i in range(n):
                assert not delta.lat_changed[k, i, i]

    def test_reports_exact_changed_links(self, small_underlay):
        a = small_underlay.snapshot(100.0)
        b = small_underlay.snapshot(100.0)
        codes = a.codes
        b.lat[TYPE_INDEX[I], 0, 1] += 1.0
        b.loss[TYPE_INDEX[P], 2, 0] = 0.25
        delta = b.delta(a)
        assert not delta.is_empty()
        assert delta.n_changed() == 2
        assert set(delta.changed_links()) == {
            (codes[0], codes[1], I), (codes[2], codes[0], P)}
        # Direction matters: the reverse links did not change.
        assert not delta.changed[TYPE_INDEX[I], 1, 0]
        assert not delta.changed[TYPE_INDEX[P], 0, 2]

    def test_lat_and_loss_tracked_separately(self, small_underlay):
        a = small_underlay.snapshot(100.0)
        b = small_underlay.snapshot(100.0)
        b.lat[TYPE_INDEX[I], 0, 1] += 1.0
        delta = b.delta(a)
        assert delta.lat_changed.any()
        assert not delta.loss_changed.any()

    def test_mismatched_codes_raise(self, small_underlay):
        snap = small_underlay.snapshot(100.0)
        other = LinkStateSnapshot.from_fn(
            list(snap.codes[:-1]), lambda a, b, t: (1.0, 0.0))
        with pytest.raises(ValueError, match="different region sets"):
            snap.delta(other)
