"""Tests for the egress pricing model."""

import numpy as np
import pytest

from repro.underlay.config import PricingConfig
from repro.underlay.pricing import PricingModel
from repro.underlay.regions import default_regions


@pytest.fixture(scope="module")
def pricing():
    return PricingModel(default_regions(), PricingConfig(),
                        np.random.default_rng(3))


def test_internet_fees_within_configured_range(pricing):
    fees = pricing.all_internet_fees()
    assert all(0.35 <= f <= 1.0 for f in fees.values())


def test_one_region_at_normalisation_ceiling(pricing):
    assert max(pricing.all_internet_fees().values()) == pytest.approx(1.0)


def test_premium_fee_exceeds_internet_fee(pricing):
    for (src, dst), fee in pricing.all_premium_fees().items():
        assert fee > pricing.internet_fee(src)


def test_premium_ratio_median_near_paper(pricing):
    ratios = pricing.premium_to_internet_ratios()
    assert 6.5 < np.median(ratios) < 8.5  # paper: 7.6x
    assert ratios.max() < 11.4 + 1e-9     # paper max: 11.4x
    assert ratios.min() >= 4.5 - 1e-9


def test_premium_fees_cover_all_ordered_pairs(pricing):
    n = len(default_regions())
    assert len(pricing.all_premium_fees()) == n * (n - 1)


def test_unknown_region_raises(pricing):
    with pytest.raises(KeyError):
        pricing.internet_fee("NOPE")
    with pytest.raises(KeyError):
        pricing.premium_fee("NOPE", "HGH")


def test_container_cost_scales_linearly(pricing):
    assert pricing.container_cost(2.0) == pytest.approx(
        2 * pricing.container_cost(1.0))


def test_container_cost_rejects_negative(pricing):
    with pytest.raises(ValueError):
        pricing.container_cost(-1.0)


def test_deterministic_given_seed():
    a = PricingModel(default_regions(), PricingConfig(),
                     np.random.default_rng(5))
    b = PricingModel(default_regions(), PricingConfig(),
                     np.random.default_rng(5))
    assert a.all_internet_fees() == b.all_internet_fees()
    assert a.all_premium_fees() == b.all_premium_fees()


def test_fees_differ_across_regions(pricing):
    fees = list(pricing.all_internet_fees().values())
    assert len(set(round(f, 6) for f in fees)) > 1
