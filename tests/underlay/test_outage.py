"""Tests for region-scale failure scenarios and overlay resilience."""

import numpy as np
import pytest

from repro.underlay.config import UnderlayConfig
from repro.underlay.linkstate import LinkType
from repro.underlay.outage import region_outage, transit_flap
from repro.underlay.topology import build_underlay

I = LinkType.INTERNET
P = LinkType.PREMIUM


@pytest.fixture()
def underlay(small_regions):
    return build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0),
                          seed=8)


class TestRegionOutage:
    def test_affects_all_outgoing_links(self, underlay):
        n = region_outage(underlay, "HGH", 1000.0, 2000.0,
                          directions="out")
        assert n == len(underlay.codes) - 1
        for other in underlay.codes:
            if other == "HGH":
                continue
            lat = float(underlay.link("HGH", other, I).latency_ms(1500.0))
            assert lat > 2000.0

    def test_both_directions(self, underlay):
        region_outage(underlay, "HGH", 1000.0, 2000.0, directions="both")
        assert float(underlay.link("SIN", "HGH", I).latency_ms(1500.0)) > 2000
        assert float(underlay.link("HGH", "SIN", I).latency_ms(1500.0)) > 2000

    def test_in_only_spares_outgoing(self, underlay):
        region_outage(underlay, "HGH", 1000.0, 2000.0, directions="in",
                      keep_existing=False)
        assert float(underlay.link("SIN", "HGH", I).latency_ms(1500.0)) > 2000
        assert float(underlay.link("HGH", "SIN", I).latency_ms(1500.0)) < 2000

    def test_premium_spared_by_default(self, underlay):
        region_outage(underlay, "HGH", 1000.0, 2000.0)
        assert float(underlay.link("HGH", "SIN", P).latency_ms(1500.0)) < 500

    def test_both_tiers_when_requested(self, underlay):
        region_outage(underlay, "HGH", 1000.0, 2000.0, tiers=(I, P))
        assert float(underlay.link("HGH", "SIN", P).latency_ms(1500.0)) > 2000

    def test_other_regions_links_untouched(self, underlay):
        region_outage(underlay, "HGH", 1000.0, 2000.0, keep_existing=False)
        lat = float(underlay.link("SIN", "FRA", I).latency_ms(1500.0))
        assert lat < 2000.0

    def test_validation(self, underlay):
        with pytest.raises(ValueError):
            region_outage(underlay, "HGH", 10.0, 10.0)
        with pytest.raises(ValueError):
            region_outage(underlay, "HGH", 0.0, 1.0, directions="sideways")
        with pytest.raises(KeyError):
            region_outage(underlay, "XXX", 0.0, 1.0)


class TestTransitFlap:
    def test_periodic_episodes(self, underlay):
        transit_flap(underlay, "HGH", 1000.0, 2000.0, period_s=200.0,
                     flap_duration_s=20.0)
        link = underlay.link("HGH", "SIN", I)
        # During a flap window the latency is elevated; between flaps not.
        assert float(link.latency_ms(1010.0)) > 800.0
        assert float(link.latency_ms(1150.0)) < 800.0
        assert float(link.latency_ms(1210.0)) > 800.0

    def test_validation(self, underlay):
        with pytest.raises(ValueError):
            transit_flap(underlay, "HGH", 5.0, 5.0)


class TestOverlayResilience:
    def test_xron_rides_out_transit_outage(self, small_regions):
        """During an Internet-tier outage at the source region, XRON's
        premium backups keep the pair usable while Internet-only dies."""
        from repro.core.config import SimulationConfig
        from repro.core.system import XRONSystem
        from repro.core.variants import internet_only, xron

        results = {}
        for make in (xron, internet_only):
            system = XRONSystem(
                regions=list(small_regions), seed=9,
                underlay_config=UnderlayConfig(horizon_s=7200.0),
                sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=10.0,
                                            seed=9))
            region_outage(system.underlay, "HGH", 1800.0, 3000.0,
                          latency_add_ms=6000.0, loss_add=0.4)
            results[make().name] = system.run(variant=make(),
                                              start_hour=0.0, hours=1.0)
        idx = results["XRON"].pair_index("HGH", "SIN")
        window = (results["XRON"].times >= 1800.0) & \
                 (results["XRON"].times < 3000.0)
        xron_lat = results["XRON"].latency_ms[idx][window]
        legacy_lat = results["Internet only"].latency_ms[idx][window]
        assert legacy_lat.max() > 5000.0
        assert np.median(xron_lat) < 1000.0
