"""The planet-scale topology generator (docs/scaling.md).

Golden property: N=11 is *exactly* the paper's deployment — same Region
objects from `generate_regions`, bit-identical link parameters and fees
from `build_planet_underlay`.  Everything else checks the generator's
contract: determinism in (config, seed), satellite separation, pricing
tiers, and parameter validation.
"""

import numpy as np
import pytest

from repro.underlay.config import UnderlayConfig
from repro.underlay.planet import (ANCHORS, MAX_REGIONS, MIN_REGIONS,
                                   PRICING_TIERS, PlanetConfig,
                                   build_planet_underlay, generate_regions,
                                   tier_fee_ranges)
from repro.underlay.regions import Region, default_regions, great_circle_km
from repro.underlay.topology import build_underlay

UCFG = UnderlayConfig(horizon_s=600.0)


# ----------------------------------------------------------------- anchors


def test_first_eleven_anchors_mirror_default_regions():
    defaults = default_regions()
    assert len(defaults) == MIN_REGIONS
    for anchor, region in zip(ANCHORS[:MIN_REGIONS], defaults):
        assert anchor.name == region.name
        assert anchor.code == region.code
        assert anchor.latitude == region.latitude
        assert anchor.longitude == region.longitude
        assert anchor.utc_offset == region.utc_offset
        assert anchor.continent == region.continent


def test_anchor_table_is_valid():
    codes = [a.code for a in ANCHORS]
    assert len(set(codes)) == len(codes)
    for a in ANCHORS:
        assert a.pricing_tier in PRICING_TIERS
        assert -90.0 <= a.latitude <= 90.0
        assert -180.0 <= a.longitude <= 180.0


# --------------------------------------------------------------- generation


def test_n11_returns_default_regions_exactly():
    got = generate_regions(PlanetConfig(n_regions=11), seed=123)
    assert got == default_regions()


def test_generation_is_deterministic_in_config_and_seed():
    # 60 > len(ANCHORS), so the set includes seeded satellites.
    a = generate_regions(PlanetConfig(n_regions=60), seed=5)
    b = generate_regions(PlanetConfig(n_regions=60), seed=5)
    assert a == b
    c = generate_regions(PlanetConfig(n_regions=60), seed=6)
    assert a != c
    # At or below the anchor count the table alone decides the set.
    assert generate_regions(PlanetConfig(n_regions=40), seed=5) == \
        generate_regions(PlanetConfig(n_regions=40), seed=6)


def test_generated_regions_are_well_formed():
    cfg = PlanetConfig(n_regions=60)
    regions = generate_regions(cfg, seed=3)
    assert len(regions) == 60
    codes = [r.code for r in regions]
    assert len(set(codes)) == len(codes)
    # Anchors come first, in table order.
    n_anchor = min(60, len(ANCHORS))
    for anchor, region in zip(ANCHORS[:n_anchor], regions):
        assert region.code == anchor.code
    for r in regions:
        assert abs(r.latitude) <= cfg.max_abs_latitude + 1e-9
        assert -180.0 <= r.longitude <= 180.0
        assert r.pricing_tier in PRICING_TIERS


def test_satellite_separation_floor():
    """Generated satellites keep `min_separation_km` from every other
    region.  Anchors are real geography and exempt (Hong Kong and
    Shenzhen really are ~27 km apart) — but every pair must still be
    strictly separated, or `LinkProcess` would reject the base latency."""
    cfg = PlanetConfig(n_regions=60)
    regions = generate_regions(cfg, seed=3)
    satellites = regions[min(60, len(ANCHORS)):]
    assert satellites, "n=60 must include generated satellites"
    for s in satellites:
        for other in regions:
            if other is not s:
                assert great_circle_km(s, other) >= cfg.min_separation_km
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert great_circle_km(a, b) > 0.0


def test_satellites_inherit_anchor_attributes():
    regions = generate_regions(PlanetConfig(n_regions=50), seed=1)
    by_code = {a.code: a for a in ANCHORS}
    for sat in regions[len(ANCHORS):]:
        anchor = by_code[sat.code.rstrip("0123456789")]
        assert sat.continent == anchor.continent
        assert sat.utc_offset == anchor.utc_offset
        assert sat.pricing_tier == anchor.pricing_tier
        assert sat.name.startswith(anchor.name)


def test_config_validation():
    with pytest.raises(ValueError):
        PlanetConfig(n_regions=MIN_REGIONS - 1)
    with pytest.raises(ValueError):
        PlanetConfig(n_regions=MAX_REGIONS + 1)
    with pytest.raises(ValueError):
        PlanetConfig(satellite_min_deg=0.0)
    with pytest.raises(ValueError):
        PlanetConfig(satellite_spread_deg=0.5, satellite_min_deg=1.0)
    with pytest.raises(ValueError):
        PlanetConfig(min_separation_km=0.0)


# ------------------------------------------------------------------ pricing


def test_tier_fee_ranges_maps_codes():
    regions = generate_regions(PlanetConfig(n_regions=40), seed=2)
    ranges = tier_fee_ranges(regions)
    assert set(ranges) == {r.code for r in regions}
    for r in regions:
        assert ranges[r.code] == PRICING_TIERS[r.pricing_tier]


def test_tier_fee_ranges_rejects_unknown_tier():
    bogus = [Region("X", "XXX", 1.0, 2.0, 0.0, "Asia", "luxury")]
    with pytest.raises(ValueError, match="luxury"):
        tier_fee_ranges(bogus)


def test_tiered_fees_within_tier_and_normalised():
    u = build_planet_underlay(40, seed=3, underlay_config=UCFG)
    fees = u.pricing.all_internet_fees()
    by_code = {r.code: r for r in u.regions}
    for code, fee in fees.items():
        lo, hi = PRICING_TIERS[by_code[code].pricing_tier]
        assert lo <= fee <= hi + 1e-12
    # PricingConfig normalisation: the most expensive Internet fee is 1.
    assert max(fees.values()) == pytest.approx(1.0)


# --------------------------------------------------- golden N=11 equivalence


def test_n11_underlay_bit_identical_to_build_underlay():
    planet = build_planet_underlay(11, seed=4, underlay_config=UCFG)
    classic = build_underlay(default_regions(), UCFG, seed=4)
    assert planet.codes == classic.codes
    ps, cs = planet.snapshot(300.0), classic.snapshot(300.0)
    np.testing.assert_array_equal(ps.lat, cs.lat)
    np.testing.assert_array_equal(ps.loss, cs.loss)
    assert planet.pricing.all_internet_fees() == \
        classic.pricing.all_internet_fees()


def test_build_planet_underlay_accepts_config_object():
    u = build_planet_underlay(PlanetConfig(n_regions=12), seed=9,
                              underlay_config=UCFG)
    assert len(u.regions) == 12
    # Determinism end-to-end: same inputs, same link state.
    v = build_planet_underlay(12, seed=9, underlay_config=UCFG)
    np.testing.assert_array_equal(u.snapshot(100.0).lat,
                                  v.snapshot(100.0).lat)
