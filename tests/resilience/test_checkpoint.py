"""Checkpoint serialization: every hop of the warm-restart round trip."""

import numpy as np

from repro.controlplane.controller import Controller
from repro.controlplane.nib import LinkReport, NetworkInformationBase
from repro.controlplane.sib import StreamInformationBase
from repro.resilience import Checkpoint
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.streams import StreamWorkload
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM

CODES = ["HGH", "SIN", "FRA"]
SIB_PARAMS = {"min_history": 4, "refit_every": 2}


def _matrix(k: float) -> TrafficMatrix:
    demand = {(a, b): 100.0 + 10.0 * k + 7.0 * (hash((a, b)) % 5)
              for a in CODES for b in CODES if a != b}
    return TrafficMatrix(CODES, demand)


def _fed_sib() -> StreamInformationBase:
    sib = StreamInformationBase(CODES, n_harmonics=4, **SIB_PARAMS)
    for k in range(6):
        sib.record_epoch(_matrix(float(k)))
    return sib


class TestComponentRoundTrips:
    def test_sib_state_restores_fitted_predictions(self):
        sib = _fed_sib()
        fresh = StreamInformationBase(CODES, n_harmonics=4, **SIB_PARAMS)
        fresh.import_state(sib.export_state())
        want = dict(sib.predicted_matrix().items())
        got = dict(fresh.predicted_matrix().items())
        assert want == got
        # The restored predictors are genuinely fitted, not falling back.
        assert fresh.predictor("HGH", "SIN").predictor.fitted

    def test_cold_sib_predicts_persistence_fallback(self):
        cold = StreamInformationBase(CODES, n_harmonics=4, **SIB_PARAMS)
        cold.record_epoch(_matrix(0.0))
        observed = dict(_matrix(0.0).items())
        for pair, pred in cold.predicted_matrix().items():
            assert pred == observed[pair] * 1.1

    def test_nib_reports_round_trip(self):
        nib = NetworkInformationBase(window=3, codes=CODES)
        for k in range(5):
            nib.update(LinkReport("HGH", "SIN", I, 100.0 + k, 0.01, 10.0 + k))
        nib.update(LinkReport("SIN", "FRA", P, 80.0, 0.0, 12.0))
        fresh = NetworkInformationBase(window=3, codes=CODES)
        fresh.import_reports(nib.export_reports())
        assert fresh.export_reports() == nib.export_reports()
        assert fresh.get("HGH", "SIN", I).latency_ms == 104.0

    def test_workload_rng_and_counter_round_trip(self):
        workload = StreamWorkload(np.random.default_rng(9))
        workload.decompose(_matrix(0.0))
        doc = workload.export_state()
        fresh = StreamWorkload(np.random.default_rng(0))
        fresh.import_state(doc)
        a = workload.decompose(_matrix(1.0))
        b = fresh.decompose(_matrix(1.0))
        assert [(s.stream_id, s.src, s.dst, s.demand_mbps) for s in a] \
            == [(s.stream_id, s.src, s.dst, s.demand_mbps) for s in b]


class TestCheckpoint:
    def _controller(self) -> Controller:
        ctrl = Controller(CODES, predictor_harmonics=4,
                          sib_params=SIB_PARAMS, seed=11)
        for k in range(6):
            ctrl.sib.record_epoch(_matrix(float(k)))
            ctrl.epochs_run += 1
        ctrl.nib.update(LinkReport("HGH", "SIN", I, 100.0, 0.01, 10.0))
        ctrl._workload.decompose(_matrix(0.0))
        return ctrl

    def test_json_round_trip_is_lossless(self):
        ctrl = self._controller()
        tables = {"HGH": {1: ("SIN", I), 2: ("FRA", P)}, "SIN": {}}
        plans = {"HGH": {1: ("SIN",)}}
        cp = Checkpoint.take(ctrl, tables, plans, t=123.0, epoch_seq=6,
                             version=4)
        restored = Checkpoint.loads(cp.dumps())
        assert restored.t == 123.0
        assert restored.epoch_seq == 6
        assert restored.version == 4
        assert restored.tables == tables
        assert restored.plans == plans
        # Serializing again produces the identical artifact.
        assert restored.dumps() == cp.dumps()

    def test_restore_reproduces_the_live_controller(self):
        ctrl = self._controller()
        cp = Checkpoint.loads(
            Checkpoint.take(ctrl, {}, {}, t=0.0, epoch_seq=6,
                            version=1).dumps())
        fresh = Controller(CODES, predictor_harmonics=4,
                           sib_params=SIB_PARAMS, seed=11)
        cp.restore(fresh)
        assert fresh.epochs_run == ctrl.epochs_run
        assert dict(fresh.sib.predicted_matrix().items()) \
            == dict(ctrl.sib.predicted_matrix().items())
        assert fresh.nib.export_reports() == ctrl.nib.export_reports()
        a = ctrl._workload.decompose(_matrix(9.0))
        b = fresh._workload.decompose(_matrix(9.0))
        assert [s.stream_id for s in a] == [s.stream_id for s in b]
