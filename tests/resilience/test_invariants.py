"""Unit tests for the routing invariants behind two-phase installs."""

from repro.resilience import (Violation, check_delivery, check_loop_freedom,
                              check_no_blackhole, check_plan_liveness,
                              validate_install)
from repro.resilience.invariants import MAX_HOPS
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET
P = LinkType.PREMIUM

SIZES = {"HGH": 2, "SIN": 2, "FRA": 1}


class TestLoopFreedom:
    def test_clean_chain_passes(self):
        tables = {"HGH": {1: ("SIN", I)}, "SIN": {1: ("FRA", P)}}
        assert check_loop_freedom(tables) == []

    def test_two_region_cycle_detected(self):
        tables = {"HGH": {1: ("SIN", I)}, "SIN": {1: ("HGH", I)}}
        violations = check_loop_freedom(tables)
        assert len(violations) == 1
        assert violations[0].kind == "loop"
        assert violations[0].stream_id == 1

    def test_cycle_flagged_once_per_stream(self):
        tables = {"HGH": {1: ("SIN", I)},
                  "SIN": {1: ("FRA", I)},
                  "FRA": {1: ("HGH", I)}}
        assert len(check_loop_freedom(tables)) == 1

    def test_independent_streams_checked_independently(self):
        tables = {"HGH": {1: ("SIN", I), 2: ("SIN", I)},
                  "SIN": {1: ("HGH", I)}}
        violations = check_loop_freedom(tables)
        assert [v.stream_id for v in violations] == [1]


class TestDelivery:
    def test_direct_and_relayed_streams_pass(self):
        tables = {"HGH": {1: ("SIN", I), 2: ("SIN", P)},
                  "SIN": {2: ("FRA", P)}}
        streams = [(1, "HGH", "SIN"), (2, "HGH", "FRA")]
        assert check_delivery(tables, streams) == []

    def test_missing_row_mid_path_detected(self):
        tables = {"HGH": {2: ("SIN", P)}, "SIN": {}}
        violations = check_delivery(tables, [(2, "HGH", "FRA")])
        assert len(violations) == 1
        assert violations[0].kind == "delivery"
        assert violations[0].region == "SIN"

    def test_hop_budget_enforced(self):
        # A long ping-pong would exceed MAX_HOPS before ever revisiting
        # (loop detection owns revisits; this is the hop *budget*).
        codes = [f"R{k}" for k in range(MAX_HOPS + 2)]
        tables = {codes[k]: {1: (codes[k + 1], I)}
                  for k in range(len(codes) - 1)}
        violations = check_delivery(tables, [(1, codes[0], "ELSEWHERE")])
        assert len(violations) == 1
        assert "hops" in violations[0].detail


class TestBlackholeAndPlans:
    def test_dead_next_hop_detected(self):
        tables = {"HGH": {1: ("SIN", I)}}
        violations = check_no_blackhole(tables, {"HGH": 2, "SIN": 0})
        assert len(violations) == 1
        assert violations[0].kind == "blackhole"

    def test_unknown_region_counts_as_dead(self):
        tables = {"HGH": {1: ("XXX", I)}}
        assert len(check_no_blackhole(tables, SIZES)) == 1

    def test_dead_relay_detected(self):
        plans = {"HGH": {1: ("SIN", "FRA")}}
        violations = check_plan_liveness(plans, {"HGH": 2, "SIN": 1, "FRA": 0})
        assert len(violations) == 1
        assert violations[0].kind == "plan"

    def test_live_relays_pass(self):
        plans = {"HGH": {1: ("SIN",)}}
        assert check_plan_liveness(plans, SIZES) == []


class TestValidateInstall:
    def test_clean_update_is_commit_safe(self):
        tables = {"HGH": {1: ("SIN", I)}, "SIN": {}}
        plans = {"HGH": {1: ("SIN",)}}
        assert validate_install(tables, plans, SIZES,
                                [(1, "HGH", "SIN")]) == []

    def test_all_invariants_compose(self):
        tables = {"HGH": {1: ("SIN", I), 2: ("XXX", I)},
                  "SIN": {1: ("HGH", I)}}
        plans = {"HGH": {1: ("FRA", "XXX")}}
        kinds = {v.kind for v in validate_install(
            tables, plans, {"HGH": 1, "SIN": 1, "FRA": 0},
            [(3, "HGH", "FRA")])}
        assert kinds == {"loop", "delivery", "blackhole", "plan"}

    def test_streams_optional(self):
        tables = {"HGH": {1: ("SIN", I)}}
        assert validate_install(tables, {}, SIZES) == []

    def test_violation_str_is_informative(self):
        v = Violation("loop", "HGH", 7, "next hop SIN closes a cycle")
        assert "loop" in str(v) and "7" in str(v) and "HGH" in str(v)
