"""Acceptance tests for the safe-update & recovery layer in the simulator.

The ISSUE's acceptance criteria, asserted end to end:

* a **disabled** config leaves runs byte-identical to a build without
  the layer — with and without a fault schedule;
* **enabled under chaos**, no invariant-violating install ever commits
  (blackholed-stream-seconds drop to zero while the unprotected
  baseline blackholes);
* a **warm restart** reconverges at least one epoch faster than a cold
  restart after the same controller outage;
* **hysteresis** produces strictly fewer failover flaps than the same
  storm without it.

The heavy scenario runs are shared through the `recovery` experiment's
own testbed (one module-scoped report), so the acceptance suite asserts
against exactly what the experiment publishes.
"""

import pytest

from repro import obs
from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.experiments import recovery
from repro.faults import (FaultSchedule, controller_outage, install_partial,
                          report_drop)
from repro.resilience import ResilienceConfig, resilience, validate_install


@pytest.fixture(scope="module")
def regions():
    from repro.underlay.regions import default_regions
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


def _run(regions, seed=5, duration=90.0, **kwargs):
    underlay, demand = recovery._build_quiet(seed)
    sim = EventDrivenXRON(
        underlay, demand,
        sim_config=SimulationConfig(epoch_s=30.0, eval_step_s=10.0,
                                    seed=seed, demand_scale=0.05),
        **kwargs)
    return sim, sim.run(3600.0, duration)


def _fingerprint(result):
    doc = {"events": result.events_processed,
           "probe_bytes": result.probe_bytes,
           "epochs": len(result.control_outputs),
           "gateways": dict(result.gateway_counts)}
    for pair, rec in sorted(result.sessions.items()):
        doc[pair] = (tuple(rec.times), tuple(rec.latency_ms),
                     tuple(rec.loss_rate), tuple(rec.on_backup),
                     tuple(rec.blackholed))
    return doc


@pytest.fixture(scope="module")
def report() -> recovery.RecoveryReport:
    """One quick-profile recovery experiment, shared by the assertions."""
    return recovery.run(flap_events=3, post_epochs=5)


class TestDisabledEquivalence:
    def test_absent_and_disabled_config_are_byte_identical(self, regions):
        __, plain = _run(regions)
        sim, disabled = _run(regions, resilience=ResilienceConfig())
        assert sim.resilience is None  # normalized away
        assert sim._installer is None
        assert _fingerprint(plain) == _fingerprint(disabled)
        assert plain.resilience_counters is None
        assert disabled.resilience_counters is None

    def test_disabled_config_identical_under_faults(self, regions):
        sched = FaultSchedule.of(
            controller_outage(3620.0, 3680.0),
            report_drop(3600.0, 90.0, probability=0.5),
            install_partial(3601.0, 90.0, keep_fraction=0.5))
        __, plain = _run(regions, faults=sched)
        __, disabled = _run(regions, faults=sched,
                            resilience=ResilienceConfig())
        assert _fingerprint(plain) == _fingerprint(disabled)
        assert plain.fault_counters == disabled.fault_counters


class TestSafeInstallsUnderChaos:
    def test_unprotected_baseline_blackholes(self, report):
        assert report.row("install-chaos", "off").blackholed_s > 0.0

    def test_no_violating_install_ever_commits(self, report):
        row = report.row("install-chaos", "on")
        # The same chaos that blackholed the baseline: zero blackholed
        # stream-seconds because rejected updates never landed.
        assert row.blackholed_s == 0.0
        assert row.counter("installs_rejected") > 0
        assert row.counter("violations_found") > 0
        assert row.counter("installs_committed") > 0

    def test_retry_budget_bounded(self, report):
        row = report.row("install-chaos", "on")
        assert row.counter("installs_retried") <= (
            (row.counter("installs_rejected")
             + row.counter("installs_deferred")))
        assert row.counter("installs_abandoned") >= 1

    def test_final_tables_satisfy_invariants_live(self, regions):
        """After chaos, what is actually installed passes validation."""
        sched = FaultSchedule.of(
            install_partial(3601.0, 100.0, keep_fraction=0.4))
        sim, __ = _run(regions, duration=210.0, faults=sched,
                       resilience=resilience(),
                       sib_params={"min_history": 4, "refit_every": 2})
        tables = {code: c.current_entries()
                  for code, c in sim.clusters.items()}
        plans = {code: c.current_plans()
                 for code, c in sim.clusters.items()}
        sizes = {code: c.size for code, c in sim.clusters.items()}
        assert validate_install(tables, plans, sizes) == []
        # Committed versions are uniform across every gateway.
        versions = {g.installed_version
                    for c in sim.clusters.values()
                    for g in c.gateways.values()}
        assert len(versions) == 1
        assert versions == {sim._installer.committed_version}


class TestWarmRestart:
    def test_outage_triggers_exactly_one_restart(self, report):
        cold = report.row("controller-outage", "cold")
        warm = report.row("controller-outage", "warm")
        assert cold.counter("restores_cold") == 1
        assert cold.counter("restores_warm") == 0
        assert warm.counter("restores_warm") == 1
        assert warm.counter("restores_cold") == 0

    def test_warm_restore_cuts_reconvergence_by_at_least_one_epoch(
            self, report):
        cold = report.row("controller-outage", "cold").reconverge_epochs
        warm = report.row("controller-outage", "warm").reconverge_epochs
        assert cold >= 1
        assert warm <= cold - 1

    def test_checkpoints_taken_every_epoch(self, report):
        warm = report.row("controller-outage", "warm")
        assert warm.counter("checkpoints_taken") > 0


class TestHysteresis:
    def test_strictly_fewer_flaps_with_hysteresis(self, report):
        off = report.row("flap-storm", "no-hysteresis").flaps
        on = report.row("flap-storm", "hysteresis").flaps
        assert off >= 2
        assert on < off

    def test_holddown_suppressions_counted(self, report):
        assert report.row("flap-storm", "hysteresis")\
            .counter("holddown_suppressed") > 0


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def clean_hub(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_resilience_events_are_traced(self, regions):
        sched = FaultSchedule.of(
            controller_outage(3610.0, 3655.0),
            install_partial(3661.0, 40.0, keep_fraction=0.4))
        tel = obs.enable()
        sim, __ = _run(regions, duration=150.0, faults=sched,
                       resilience=resilience(),
                       sib_params={"min_history": 4, "refit_every": 2})
        kinds = set(tel.tracer.kinds())
        assert "resilience_install_commit" in kinds
        assert "resilience_install_rejected" in kinds
        assert "resilience_install_retry" in kinds
        assert "resilience_checkpoint" in kinds
        assert "resilience_restore" in kinds
        restore = tel.tracer.by_kind("resilience_restore")[0]
        assert restore.fields["warm"] in (True, False)
