"""Byte-identity: the partition-tolerance layer is invisible when off.

Every configuration in `tests.resilience.partition_golden.CONFIGS` is
re-run and its canonical-output digest compared against the fixture
captured BEFORE the membership/regional code existed.  Any drift —
an extra RNG draw, a reordered event, a new field with a non-zero
default — fails here first.

Regenerate the fixture (only when intentionally changing baseline
behavior) with::

    PYTHONPATH=src python tests/resilience/partition_golden.py --write
"""

import json

import pytest

from tests.resilience.partition_golden import CONFIGS, FIXTURE, digest


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("name", [name for name, *_ in CONFIGS])
def test_disabled_run_matches_pre_partition_golden(name, golden):
    assert digest(name) == golden[name], (
        f"configuration {name!r} drifted from the pre-partition golden "
        "digest: the disabled partition-tolerance layer must be "
        "byte-invisible")
