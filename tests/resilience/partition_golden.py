"""Shared harness for the partition disabled-equivalence goldens.

The partition-tolerance subsystem (soft-state membership + regional
sub-controllers) promises that runs with it *disabled* are byte-identical
to a build that predates the subsystem entirely.  To make that claim
checkable against history — not just against "the same code with the
flag off" — the fixture under ``tests/_golden/partition_disabled.json``
stores SHA-256 digests of canonical run output captured on the tree
*before* the subsystem existed.  The disabled-equivalence suite replays
the same configurations (never passing the new kwargs) and asserts the
digests still match.

Regenerate (only when an intentional behavior change lands):

    PYTHONPATH=src python -m tests.resilience.partition_golden --write
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional

FIXTURE = Path(__file__).resolve().parents[1] / "_golden" / \
    "partition_disabled.json"

#: (name, control_mode, with_chaos_schedule, with_resilience)
CONFIGS = (
    ("monolithic-calm", "monolithic", False, False),
    ("monolithic-chaos", "monolithic", True, False),
    ("sharded-calm", "sharded", False, False),
    ("sharded-chaos", "sharded", True, False),
    ("incremental-calm", "incremental", False, False),
    ("incremental-chaos", "incremental", True, False),
    ("monolithic-calm-resilient", "monolithic", False, True),
    ("monolithic-chaos-resilient", "monolithic", True, True),
)


def _build(seed: int = 5):
    from repro.traffic.demand import DemandModel
    from repro.underlay.config import UnderlayConfig
    from repro.underlay.linkstate import LinkType
    from repro.underlay.regions import default_regions
    from repro.underlay.scenarios import quiet_link
    from repro.underlay.topology import build_underlay

    by_code = {r.code: r for r in default_regions()}
    regions = [by_code[c] for c in ("HGH", "SIN", "FRA")]
    config = UnderlayConfig(horizon_s=7200.0)
    config.internet.base_loss_min = 1e-6
    config.internet.base_loss_max = 1e-5
    config.internet.diurnal_loss_amp = 0.0
    for tier in (config.internet, config.premium):
        tier.short_events_per_day = 0.0
        tier.long_events_per_day = 0.0
    u = build_underlay(regions, config, seed=seed)
    for (a, b) in u.pairs:
        for lt in (LinkType.INTERNET, LinkType.PREMIUM):
            quiet_link(u, a, b, lt)
    return u, DemandModel(regions, seed=seed)


def _chaos_schedule():
    from repro.faults import (FaultSchedule, controller_outage, gateway_crash,
                              install_partial, probe_blackout)

    return FaultSchedule.of(
        controller_outage(3640.0, 3700.0),
        gateway_crash(3620.0, 40.0, region="SIN", count=2),
        probe_blackout(3610.0, 30.0, region="HGH"),
        install_partial(3660.0, 30.0, 0.5, region="FRA"),
    )


def _nonzero(counters: Optional[Dict[str, int]]):
    """Keep only counters that actually fired.

    New subsystems may grow *new* zero-valued counter fields; filtering
    zeros keeps the canonical form stable across such additive changes
    (a nonzero value in a new counter is a real behavior change and
    must break the digest).
    """
    if counters is None:
        return None
    return {k: v for k, v in sorted(counters.items()) if v}


def canonical_bytes(name: str) -> bytes:
    """Run one named configuration and return canonical output bytes."""
    from repro.core.config import SimulationConfig
    from repro.core.eventsim import EventDrivenXRON
    from repro.core.variants import xron
    from repro.resilience.config import resilience

    by_name = {c[0]: c for c in CONFIGS}
    __, mode, chaos, resilient = by_name[name]
    u, d = _build()
    sim = EventDrivenXRON(
        u, d,
        variant=replace(xron(), elastic=False),
        sim_config=SimulationConfig(epoch_s=30.0, eval_step_s=10.0,
                                    seed=5, demand_scale=0.05,
                                    control_mode=mode),
        faults=_chaos_schedule() if chaos else None,
        resilience=resilience() if resilient else None)
    if mode == "sharded":
        # The 3-region toy is far below the sharding threshold; force
        # the pool into the epoch path so the mode is actually exercised.
        sim.controller._pool.min_shard_rows = 1
    with sim:
        result = sim.run(3600.0, 150.0)
    doc = {"events": result.events_processed,
           "probe_bytes": result.probe_bytes,
           "epochs": len(result.control_outputs),
           "gateways": dict(result.gateway_counts),
           "fault_counters": _nonzero(result.fault_counters),
           "resilience_counters": _nonzero(result.resilience_counters),
           "sessions": {
               f"{pair[0]}->{pair[1]}": [list(rec.times),
                                         list(rec.latency_ms),
                                         list(rec.loss_rate),
                                         list(rec.on_backup),
                                         list(rec.hop_counts),
                                         list(rec.blackholed)]
               for pair, rec in sorted(result.sessions.items())}}
    return json.dumps(doc, sort_keys=True).encode()


def digest(name: str) -> str:
    return hashlib.sha256(canonical_bytes(name)).hexdigest()


def _write_fixture() -> None:
    doc = {name: digest(name) for (name, *_rest) in CONFIGS}
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE} ({len(doc)} configurations)")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        _write_fixture()
    else:
        print(json.dumps({name: digest(name) for (name, *_r) in CONFIGS},
                         indent=2, sort_keys=True))
