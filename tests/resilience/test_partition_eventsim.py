"""Integration tests: control partitions against the event simulator.

The blackhole-collapse and heal-reconciliation behavior of the
partition-tolerance pair (soft-state membership + regional
sub-controllers), including the heal RACE: a regional install still in
flight when the partition heals must lose to the fenced global commit
at the gateways' version guard.
"""

from dataclasses import replace

import pytest

from repro.controlplane import membership, regional_control
from repro.controlplane.regional import REGIONAL_STREAM_BASE
from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.variants import xron
from repro.faults import FaultSchedule, control_partition, install_delay
from repro.resilience.config import resilience
from repro.resilience.invariants import validate_install
from tests.resilience.partition_golden import _build

_START = 3600.0
_EPOCH_S = 30.0
_SEVERED = ("HGH", "SIN")
_TRACKED = [("HGH", "SIN"), ("SIN", "HGH"), ("HGH", "FRA")]


def _system(schedule, **kwargs):
    underlay, demand = _build(seed=5)
    return EventDrivenXRON(
        underlay, demand, variant=replace(xron(), elastic=False),
        sim_config=SimulationConfig(epoch_s=_EPOCH_S, eval_step_s=10.0,
                                    seed=5, demand_scale=0.05),
        tracked_pairs=list(_TRACKED),
        sib_params={"min_history": 4, "refit_every": 2},
        faults=schedule, resilience=resilience(), **kwargs)


def _partition_schedule(epochs=4):
    return FaultSchedule.of(control_partition(
        _START + 5 * _EPOCH_S + 1.0, epochs * _EPOCH_S, _SEVERED))


def test_regional_needs_the_resilience_layer():
    underlay, demand = _build(seed=5)
    with pytest.raises(ValueError, match="resilience"):
        EventDrivenXRON(underlay, demand,
                        variant=replace(xron(), elastic=False),
                        regional=regional_control())


def test_disabled_configs_normalize_to_none():
    from repro.controlplane.membership import MembershipConfig
    from repro.controlplane.regional import RegionalControlConfig

    system = _system(FaultSchedule.empty(),
                     membership=MembershipConfig(enabled=False),
                     regional=RegionalControlConfig(enabled=False))
    with system:
        assert system.membership_config is None
        assert system._membership is None
        assert system.regional_config is None
        assert system._partition_counters is None
        result = system.run(_START, 90.0)
    assert result.membership_counters is None
    assert result.partition_counters is None


def test_partition_blackholes_without_degraded_mode():
    """Baseline: every rebind during the cut binds intra-partition
    sessions to stream ids the severed tables never learn."""
    system = _system(_partition_schedule())
    with system:
        result = system.run(_START, 450.0)
    intra = [result.sessions[p] for p in (("HGH", "SIN"), ("SIN", "HGH"))]
    assert all(rec.blackholed for rec in intra)
    assert result.fault_counters["reports_severed"] > 0
    assert result.fault_counters["installs_severed"] > 0
    assert result.partition_counters is None


def test_degraded_mode_keeps_intra_partition_sessions_alive():
    system = _system(_partition_schedule(),
                     membership=membership(), regional=regional_control())
    with system:
        result = system.run(_START, 450.0)
    for pair in (("HGH", "SIN"), ("SIN", "HGH")):
        assert result.sessions[pair].blackholed == []
    pc = result.partition_counters
    assert pc["partitions_started"] == 1
    assert pc["partitions_healed"] == 1
    assert pc["regional_epochs"] >= 2
    assert pc["regional_installs_committed"] >= 1
    assert pc["regional_installs_rejected"] == 0
    assert pc["reconcile_fences"] == 1
    assert pc["reconvergence_epochs"] >= 1
    mc = result.membership_counters
    assert mc["expiries"] > 0
    assert mc["regions_demoted"] > 0


def test_heal_sweeps_regional_streams_and_no_regional_controller_remains():
    system = _system(_partition_schedule(),
                     membership=membership(), regional=regional_control())
    with system:
        system.run(_START, 450.0)
        assert system._regional == {}
        for cluster in system.clusters.values():
            for sid in cluster.current_entries():
                assert sid < REGIONAL_STREAM_BASE


def test_heal_race_inflight_regional_install_loses_to_fenced_commit():
    """Satellite: an install-delay fault holds the LAST regional push
    past the heal.  The fenced global commit lands first with a
    strictly newer version, so the late regional install is discarded
    by every gateway's version guard — stale regional state never
    clobbers newer global state."""
    cut_start = _START + 5 * _EPOCH_S + 1.0          # covers 3 epochs
    cut_s = 3 * _EPOCH_S
    last_tick = _START + 8 * _EPOCH_S                # final regional epoch
    schedule = FaultSchedule.of(
        control_partition(cut_start, cut_s, _SEVERED),
        # Active only at the last regional tick, longer than the time
        # to heal: the push is in flight when the partition closes.
        install_delay(last_tick - 5.0, 10.0, 40.0, region="HGH"))
    system = _system(schedule, membership=membership(),
                     regional=regional_control())
    with system:
        result = system.run(_START, 450.0)
        assert result.fault_counters["installs_delayed"] >= 1
        pc = result.partition_counters
        assert pc["partitions_healed"] == 1
        assert pc["reconcile_fences"] == 1
        committed = system._installer.committed_version
        for code in _SEVERED:
            cluster = system.clusters[code]
            # The fenced global version won; no regional rows survive.
            for gateway in cluster.gateways.values():
                assert gateway.installed_version == committed
            for sid in cluster.current_entries():
                assert sid < REGIONAL_STREAM_BASE
        # The merged post-heal tables still satisfy every routing
        # invariant for the last epoch's streams.
        output = system.control_outputs[-1]
        streams = sorted({(a.stream.stream_id, a.stream.src, a.stream.dst)
                          for a in output.path_result.assignments})
        tables = {code: cluster.current_entries()
                  for code, cluster in system.clusters.items()}
        plans = {code: cluster.current_plans()
                 for code, cluster in system.clusters.items()}
        sizes = {code: cluster.size
                 for code, cluster in system.clusters.items()}
        assert validate_install(tables, plans, sizes, streams) == []


def test_membership_starves_and_rejoins_across_the_cut():
    """Membership alone (no regional control): the severed regions
    expire out of global path control during the cut and rejoin after
    heal when their reports resume."""
    system = _system(_partition_schedule(), membership=membership())
    with system:
        result = system.run(_START, 450.0)
        table = system._membership
        mc = result.membership_counters
        assert mc["expiries"] > 0
        assert mc["regions_demoted"] > 0
        # Post-heal: refreshes resumed, both regions live again.
        for code in _SEVERED:
            assert table.alive_count(code) > 0
