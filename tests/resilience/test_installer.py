"""Unit tests for the resilience config and two-phase installer."""

import pytest

from repro.resilience import ResilienceConfig, TwoPhaseInstaller, resilience
from repro.underlay.linkstate import LinkType

I = LinkType.INTERNET


class TestConfig:
    def test_disabled_by_default(self):
        assert ResilienceConfig().enabled is False

    def test_convenience_constructor_is_enabled(self):
        assert resilience().enabled is True

    def test_resolved_derives_staleness_threshold(self):
        cfg = resilience().resolved(epoch_s=60.0)
        assert cfg.staleness_threshold_s == cfg.staleness_epochs * 60.0

    def test_resolved_keeps_explicit_threshold(self):
        cfg = ResilienceConfig(enabled=True, staleness_threshold_s=42.0)
        assert cfg.resolved(60.0).staleness_threshold_s == 42.0

    @pytest.mark.parametrize("kwargs", [
        {"max_install_retries": -1},
        {"retry_backoff_s": 0.0},
        {"retry_backoff_factor": 0.5},
        {"checkpoint_every_epochs": 0},
        {"staleness_epochs": 0},
        {"staleness_threshold_s": -1.0},
        {"failover_trigger_bursts": 0},
        {"failback_holddown_s": -1.0},
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestInstaller:
    def test_versions_are_monotonic(self):
        installer = TwoPhaseInstaller(resilience())
        assert [installer.next_version() for __ in range(3)] == [1, 2, 3]

    def test_is_current_tracks_newest_proposal(self):
        installer = TwoPhaseInstaller(resilience())
        v1 = installer.next_version()
        assert installer.is_current(v1)
        v2 = installer.next_version()
        assert not installer.is_current(v1)
        assert installer.is_current(v2)

    def test_mark_committed_never_regresses(self):
        installer = TwoPhaseInstaller(resilience())
        installer.next_version()
        installer.next_version()
        installer.mark_committed(2)
        installer.mark_committed(1)
        assert installer.committed_version == 2
        assert installer.counters.installs_committed == 2

    def test_backoff_is_bounded_exponential(self):
        installer = TwoPhaseInstaller(resilience())
        assert [installer.backoff_delay(a) for a in (1, 2, 3)] \
            == [2.0, 4.0, 8.0]
        with pytest.raises(ValueError):
            installer.backoff_delay(0)

    def test_retry_budget(self):
        installer = TwoPhaseInstaller(resilience())
        budget = installer.config.max_install_retries
        assert not installer.exhausted(budget)
        assert installer.exhausted(budget + 1)

    def test_validate_finds_violations_and_counts(self):
        installer = TwoPhaseInstaller(resilience())
        tables = {"HGH": {1: ("SIN", I)}, "SIN": {1: ("HGH", I)}}
        violations = installer.validate(tables, {}, {"HGH": 1, "SIN": 1}, [])
        assert violations
        assert installer.counters.violations_found == len(violations)

    def test_validation_can_be_disabled(self):
        from dataclasses import replace
        installer = TwoPhaseInstaller(
            replace(resilience(), validate_installs=False))
        tables = {"HGH": {1: ("SIN", I)}, "SIN": {1: ("HGH", I)}}
        assert installer.validate(tables, {}, {}, []) == []
        assert installer.counters.violations_found == 0

    def test_counters_dict_round_trip(self):
        installer = TwoPhaseInstaller(resilience())
        installer.counters.installs_rejected += 2
        doc = installer.counters.as_dict()
        assert doc["installs_rejected"] == 2
        assert installer.counters.total() == 2
