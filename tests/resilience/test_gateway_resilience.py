"""Gateway-level resilience: versioned installs, degraded mode, hold-down."""

import numpy as np
import pytest

from repro.dataplane.config import ReactionConfig
from repro.dataplane.gateway import Gateway
from repro.resilience import ResilienceCounters, resilience
from repro.underlay.config import UnderlayConfig
from repro.underlay.events import DegradationEvent
from repro.underlay.linkstate import LinkType
from repro.underlay.scenarios import inject_events, quiet_link
from repro.underlay.topology import build_underlay

I = LinkType.INTERNET
P = LinkType.PREMIUM

#: Staleness threshold = 3 epochs x 60 s; hold-down 30 s.  The epoch is
#: kept much longer than the hold-down so the hold-down tests never
#: trip the staleness demotion by accident.
EPOCH_S = 60.0


@pytest.fixture()
def underlay(small_regions):
    u = build_underlay(small_regions, UnderlayConfig(horizon_s=7200.0),
                       seed=11)
    for (a, b) in u.pairs:
        for lt in (I, P):
            quiet_link(u, a, b, lt)
    return u


@pytest.fixture()
def counters():
    return ResilienceCounters()


@pytest.fixture()
def gateway(underlay, counters):
    gw = Gateway("HGH", 0, underlay,
                 reaction=ReactionConfig(trigger_bursts=2, recover_bursts=4),
                 rng=np.random.default_rng(0),
                 resilience=resilience().resolved(EPOCH_S),
                 resilience_counters=counters)
    gw.install_tables({1: ("SIN", I)}, {1: ("SIN",)}, version=1, now=0.0)
    return gw


def _degrade(gateway, underlay, onset=10.0, duration=60.0):
    inject_events(underlay, "HGH", "SIN", I,
                  [DegradationEvent(onset, duration, 5000.0, 0.3)])
    for k in range(10):
        gateway.probe_all(onset + 4.0 + k * 0.4)


class TestVersionedInstalls:
    def test_newer_version_accepted(self, gateway):
        assert gateway.install_tables({1: ("FRA", I)}, {}, version=2, now=5.0)
        assert gateway.installed_version == 2
        assert gateway.installed_at == 5.0

    def test_out_of_order_install_discarded(self, gateway):
        gateway.install_tables({1: ("FRA", I)}, {}, version=3, now=5.0)
        assert not gateway.install_tables({1: ("SIN", I)}, {1: ("SIN",)},
                                          version=2, now=6.0)
        assert gateway.table.lookup(1).next_hop == "FRA"
        assert gateway.installed_version == 3

    def test_unversioned_install_keeps_legacy_behavior(self, gateway):
        assert gateway.install_tables({1: ("FRA", I)}, {})
        assert gateway.installed_version == 1  # untouched
        assert gateway.table.lookup(1).next_hop == "FRA"


class TestDegradedMode:
    def test_fresh_table_forwards_normally(self, gateway):
        decision = gateway.forward(1, now=EPOCH_S)
        assert decision.link_type is I
        assert not decision.degraded_mode

    def test_stale_table_demotes_internet_to_premium(self, gateway, counters):
        decision = gateway.forward(1, now=4 * EPOCH_S)  # > 3 missed epochs
        assert decision.degraded_mode
        assert decision.link_type is P
        assert decision.next_hop == "SIN"
        assert not decision.via_backup
        assert counters.degraded_demotions == 1

    def test_demotion_counted_once_per_stream_per_install(self, gateway,
                                                          counters):
        gateway.forward(1, now=4 * EPOCH_S)
        gateway.forward(1, now=4 * EPOCH_S + 1.0)
        assert counters.degraded_demotions == 1
        gateway.install_tables({1: ("SIN", I)}, {}, version=2,
                               now=5 * EPOCH_S)
        gateway.forward(1, now=9 * EPOCH_S)
        assert counters.degraded_demotions == 2

    def test_premium_entries_not_demoted(self, underlay, counters):
        gw = Gateway("HGH", 0, underlay,
                     resilience=resilience().resolved(EPOCH_S),
                     resilience_counters=counters,
                     rng=np.random.default_rng(0))
        gw.install_tables({1: ("SIN", P)}, {}, version=1, now=0.0)
        decision = gw.forward(1, now=10 * EPOCH_S)
        assert not decision.degraded_mode
        assert counters.degraded_demotions == 0

    def test_fresh_install_clears_demotions(self, gateway):
        assert gateway.forward(1, now=4 * EPOCH_S).degraded_mode
        gateway.install_tables({1: ("SIN", I)}, {}, version=2,
                               now=4 * EPOCH_S + 1.0)
        assert not gateway.forward(1, now=4 * EPOCH_S + 2.0).degraded_mode


class TestHolddown:
    def test_failback_held_down_after_failover(self, gateway, underlay,
                                               counters):
        _degrade(gateway, underlay, onset=10.0, duration=20.0)
        assert gateway.forward(1, now=15.0).via_backup
        # Recover the link estimator: probe well past the event.
        for k in range(20):
            gateway.probe_all(35.0 + k * 0.4)
        assert not gateway.link_degraded("SIN", I)
        # Inside the 30 s hold-down window: still on the backup.
        held = gateway.forward(1, now=44.0)
        assert held.via_backup
        assert held.link_type is P
        assert counters.holddown_suppressed >= 1
        # After the hold-down expires: failback to the normal path.
        released = gateway.forward(1, now=15.0 + 31.0)
        assert not released.via_backup
        assert released.link_type is I

    def test_no_holddown_without_hysteresis(self, underlay, counters):
        from dataclasses import replace
        gw = Gateway("HGH", 0, underlay,
                     reaction=ReactionConfig(trigger_bursts=2,
                                             recover_bursts=4),
                     rng=np.random.default_rng(0),
                     resilience=replace(resilience(),
                                        hysteresis_enabled=False)
                     .resolved(EPOCH_S),
                     resilience_counters=counters)
        gw.install_tables({1: ("SIN", I)}, {1: ("SIN",)}, version=1, now=0.0)
        _degrade(gw, underlay, onset=10.0, duration=20.0)
        assert gw.forward(1, now=15.0).via_backup
        for k in range(20):
            gw.probe_all(35.0 + k * 0.4)
        # Monitoring recovered -> immediate failback, no suppression.
        assert not gw.forward(1, now=44.0).via_backup
        assert counters.holddown_suppressed == 0

    def test_disabled_config_is_normalized_away(self, underlay):
        from repro.resilience import ResilienceConfig
        gw = Gateway("HGH", 0, underlay,
                     resilience=ResilienceConfig(),  # disabled
                     rng=np.random.default_rng(0))
        assert gw.resilience is None
