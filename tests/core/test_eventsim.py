"""Tests for the event-driven full-system simulator."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.variants import internet_only, xron, xron_basic
from repro.traffic.demand import DemandModel
from repro.underlay.config import UnderlayConfig
from repro.underlay.events import DegradationEvent
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.scenarios import inject_events, quiet_link
from repro.underlay.topology import build_underlay


@pytest.fixture(scope="module")
def regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


def _build(regions, seed=5, quiet=False):
    config = UnderlayConfig(horizon_s=7200.0)
    if quiet:
        # A genuinely calm Internet: no degradation events AND no
        # baseline/diurnal loss that could trip the EWMA detector.
        config.internet.base_loss_min = 1e-6
        config.internet.base_loss_max = 1e-5
        config.internet.diurnal_loss_amp = 0.0
        config.internet.short_events_per_day = 0.0
        config.internet.long_events_per_day = 0.0
        config.premium.short_events_per_day = 0.0
        config.premium.long_events_per_day = 0.0
    u = build_underlay(regions, config, seed=seed)
    if quiet:
        for (a, b) in u.pairs:
            for lt in (LinkType.INTERNET, LinkType.PREMIUM):
                quiet_link(u, a, b, lt)
    return u, DemandModel(regions, seed=seed)


def _sim_config(seed=5, epoch_s=60.0, demand_scale=1.0):
    return SimulationConfig(epoch_s=epoch_s, eval_step_s=10.0, seed=seed,
                            demand_scale=demand_scale)


def test_rejects_direct_path_variants(regions):
    u, d = _build(regions)
    with pytest.raises(ValueError):
        EventDrivenXRON(u, d, variant=internet_only())


def test_runs_and_measures_sessions(regions):
    u, d = _build(regions)
    sim = EventDrivenXRON(u, d, sim_config=_sim_config())
    result = sim.run(3600.0, 120.0)
    assert result.control_outputs  # epochs ran
    assert result.probe_bytes > 0
    assert result.events_processed > 100
    measured = [rec for rec in result.sessions.values() if rec.times]
    assert measured
    for rec in measured:
        assert all(l > 0 for l in rec.latency_ms)
        assert all(0 <= x <= 1 for x in rec.loss_rate)
        assert all(1 <= h <= 4 for h in rec.hop_counts)


def test_quiet_underlay_never_reacts(regions):
    u, d = _build(regions, quiet=True)
    sim = EventDrivenXRON(u, d, sim_config=_sim_config())
    result = sim.run(3600.0, 90.0)
    assert result.detections == 0
    for rec in result.sessions.values():
        assert not any(rec.on_backup)


def test_injected_degradation_triggers_reaction(regions):
    u, d = _build(regions, quiet=True)
    pair = max(d.pairs, key=lambda p: d.pair_scale(*p))
    inject_events(u, pair[0], pair[1], LinkType.INTERNET,
                  [DegradationEvent(3630.0, 60.0, 5000.0, 0.3)])
    # Light demand so the session binds in the first epoch; a long epoch
    # so the *local* reaction (not a controller recompute) is what
    # handles the degradation.
    sim = EventDrivenXRON(u, d,
                          sim_config=_sim_config(epoch_s=300.0,
                                                 demand_scale=0.05),
                          tracked_pairs=[pair])
    result = sim.run(3600.0, 120.0)
    record = result.sessions[pair]
    assert result.detections >= 1
    assert any(record.on_backup)
    # During the backup period latency must stay bounded (premium path),
    # far below the injected 5 s spike.
    backup_lat = [l for l, b in zip(record.latency_ms, record.on_backup)
                  if b]
    assert backup_lat and max(backup_lat) < 1000.0


def test_xron_basic_ignores_degradation(regions):
    u, d = _build(regions, quiet=True)
    pair = max(d.pairs, key=lambda p: d.pair_scale(*p))
    inject_events(u, pair[0], pair[1], LinkType.INTERNET,
                  [DegradationEvent(3630.0, 60.0, 5000.0, 0.3)])
    sim = EventDrivenXRON(u, d, variant=xron_basic(),
                          sim_config=_sim_config(epoch_s=300.0,
                                                 demand_scale=0.05),
                          tracked_pairs=[pair])
    result = sim.run(3600.0, 120.0)
    record = result.sessions[pair]
    # Without fast reaction the session rides the degraded link...
    assert not any(record.on_backup)
    # ...unless the next control epoch routes around it; either way the
    # spike is visible in at least one sample.
    assert max(record.latency_ms) > 1000.0


def test_elastic_scaling_grows_fleet(regions):
    u, d = _build(regions)
    sim = EventDrivenXRON(u, d, sim_config=SimulationConfig(
        epoch_s=60.0, eval_step_s=10.0, seed=5, initial_gateways=1))
    result = sim.run(3600.0, 240.0)
    # The China-heavy regions need more than one gateway at this hour
    # (12:00 local): provisioning completes within the run.
    assert max(result.gateway_counts.values()) > 1


def test_deterministic(regions):
    u1, d1 = _build(regions)
    u2, d2 = _build(regions)
    r1 = EventDrivenXRON(u1, d1, sim_config=_sim_config()).run(3600.0, 60.0)
    r2 = EventDrivenXRON(u2, d2, sim_config=_sim_config()).run(3600.0, 60.0)
    for pair in r1.sessions:
        np.testing.assert_allclose(r1.sessions[pair].latency_ms,
                                   r2.sessions[pair].latency_ms)
    assert r1.events_processed == r2.events_processed


def test_controller_outage_data_plane_survives(regions):
    """With the controller down, stale tables plus local reaction keep
    the session usable through a degradation (§4.3's failure story)."""
    u, d = _build(regions, quiet=True)
    pair = max(d.pairs, key=lambda p: d.pair_scale(*p))
    inject_events(u, pair[0], pair[1], LinkType.INTERNET,
                  [DegradationEvent(3700.0, 60.0, 5000.0, 0.3)])
    sim = EventDrivenXRON(
        u, d,
        sim_config=_sim_config(epoch_s=60.0, demand_scale=0.05),
        tracked_pairs=[pair],
        controller_outage=(3650.0, 3900.0))
    result = sim.run(3600.0, 300.0)
    assert sim.skipped_epochs >= 3
    record = result.sessions[pair]
    times = np.asarray(record.times)
    lat = np.asarray(record.latency_ms)
    window = (times >= 3705.0) & (times < 3760.0)
    # The degradation falls entirely inside the outage; reaction alone
    # must keep latency bounded.
    assert window.any()
    assert np.median(lat[window]) < 1000.0
    assert any(np.asarray(record.on_backup)[window])
