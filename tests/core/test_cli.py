"""Tests for the command-line interface."""

import pytest

from repro.cli import VARIANTS, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_variant_choices_cover_all_factories():
    from repro.core import variants
    for factory_name in VARIANTS.values():
        assert hasattr(variants, factory_name)


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "regions (11):" in out
    assert "premium fee multiple" in out


def test_run_command_small(capsys):
    rc = main(["run", "--hours", "0.1", "--step", "30", "--epoch", "180",
               "--variant", "premium-only", "--start-hour", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "stall ratio" in out
    assert "premium share 100.0%" in out


def test_experiments_only_selector(capsys):
    rc = main(["experiments", "--only", "fig04"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "Fig. 5" not in out


def test_unknown_variant_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--variant", "warpspeed"])
