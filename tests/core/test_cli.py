"""Tests for the command-line interface."""

import pytest

from repro.cli import VARIANTS, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_variant_choices_cover_all_factories():
    from repro.core import variants
    for factory_name in VARIANTS.values():
        assert hasattr(variants, factory_name)


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "regions (11):" in out
    assert "premium fee multiple" in out


def test_run_command_small(capsys):
    rc = main(["run", "--hours", "0.1", "--step", "30", "--epoch", "180",
               "--variant", "premium-only", "--start-hour", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "stall ratio" in out
    assert "premium share 100.0%" in out


def test_experiments_only_selector(capsys):
    rc = main(["experiments", "--only", "fig04"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "Fig. 5" not in out


def test_unknown_variant_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--variant", "warpspeed"])


def test_demo_chaos_streams_slo_and_profile_end_to_end(tmp_path, capsys):
    """The full observability loop through the CLI: a chaos demo with a
    rotating stream and the SLO engine, then summary + profile over the
    rotated parts."""
    stream = tmp_path / "soak" / "stream.jsonl"
    rc = main(["demo", "--minutes", "4", "--chaos", "--slo",
               "--stream", str(stream), "--stream-max-kb", "32"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos testbed" in out
    assert "SLO 'interactive'" in out
    assert "breaches 1" in out

    parts = sorted((tmp_path / "soak").glob("stream.*.jsonl"))
    assert len(parts) >= 2  # the 32 KB budget forces rotation

    pattern = str(tmp_path / "soak" / "stream.*.jsonl")
    assert main(["obs", "summary", pattern]) == 0
    summary = capsys.readouterr().out
    assert "slo_breach" in summary
    assert "slo_recovered" in summary

    assert main(["obs", "profile", pattern]) == 0
    profile = capsys.readouterr().out
    assert "algo1.path_control" in profile
    assert "(phases, top level)" in profile

    from repro.obs.export import read_many
    (breach,) = read_many(parts).events_of("slo_breach")
    assert breach["cause_kind"] == "fault_probe_blackout"
    assert breach["cause_fault_id"] == 0


def test_serve_soak_checkpoint_and_resume(tmp_path, capsys):
    """The serve soak through the CLI: chaos window, drain checkpoint,
    then a resumed leg that finishes the window without replaying the
    fired crash (issue #9)."""
    import json

    checkpoint = tmp_path / "cp.json"
    health1 = tmp_path / "health1.json"
    rc = main(["serve", "--minutes", "10", "--chaos",
               "--chaos-period", "240", "--quiet", "--heartbeat-s", "120",
               "--checkpoint", str(checkpoint),
               "--health-out", str(health1)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "serve: completed" in out
    doc1 = json.loads(health1.read_text())
    assert doc1["drained"]
    assert doc1["fault_counters"]["gateways_crashed"] == 1
    assert doc1["fault_state"]["fired"] == [0]
    assert checkpoint.exists()

    # Resume from the mid-soak envelope: the window is already complete,
    # so the resumed leg is a no-op that still drains cleanly — and the
    # fired crash window is NOT replayed.
    health2 = tmp_path / "health2.json"
    rc = main(["serve", "--minutes", "10", "--resume", "--quiet",
               "--checkpoint", str(checkpoint),
               "--health-out", str(health2)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "resumed from" in out
    doc2 = json.loads(health2.read_text())
    assert doc2["drained"]
    # Counters travelled with the checkpoint: still exactly one crash.
    assert doc2["fault_counters"]["gateways_crashed"] == 1
    assert doc2["fault_state"]["fired"] == [0]


def test_serve_resume_requires_checkpoint(capsys):
    assert main(["serve", "--minutes", "1", "--resume"]) == 2
    assert "--checkpoint" in capsys.readouterr().err


def test_serve_rejects_empty_window(capsys):
    assert main(["serve"]) == 2
    assert "positive" in capsys.readouterr().err
