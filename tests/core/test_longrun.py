"""Tests for the multi-day simulation driver."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.longrun import run_multi_day
from repro.core.variants import premium_only, xron
from repro.underlay.regions import default_regions


@pytest.fixture(scope="module")
def small_regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


@pytest.fixture(scope="module")
def two_days(small_regions):
    return run_multi_day(
        2, xron(), seed=4, regions=list(small_regions),
        sim_config=SimulationConfig(epoch_s=1800.0, eval_step_s=120.0,
                                    seed=4))


def test_one_summary_per_day(two_days):
    assert [d.day for d in two_days.daily] == [0, 1]


def test_summaries_are_sane(two_days):
    for d in two_days.daily:
        assert 0.0 <= d.qoe.stall_ratio <= 1.0
        assert d.latency_p999_ms >= d.latency_p99_ms > 0
        assert 0.0 <= d.premium_share <= 1.0
        assert d.mean_containers >= 1.0
        assert d.network_cost > 0


def test_series_accessors(two_days):
    stall = two_days.series("stall_ratio")
    churn = two_days.series("route_churn")
    assert stall.shape == churn.shape == (2,)
    assert two_days.mean("premium_share") == pytest.approx(
        float(two_days.series("premium_share").mean()))


def test_rejects_zero_days():
    with pytest.raises(ValueError):
        run_multi_day(0)


def test_deterministic(small_regions):
    kwargs = dict(seed=5, regions=list(small_regions),
                  sim_config=SimulationConfig(epoch_s=1800.0,
                                              eval_step_s=300.0, seed=5))
    a = run_multi_day(2, xron(), **kwargs)
    b = run_multi_day(2, xron(), **kwargs)
    np.testing.assert_array_equal(a.series("stall_ratio"),
                                  b.series("stall_ratio"))
    np.testing.assert_array_equal(a.series("network_cost"),
                                  b.series("network_cost"))


def test_days_have_different_link_conditions(small_regions):
    """Per-day underlays differ, so daily outcomes are not identical."""
    result = run_multi_day(
        2, premium_only(), seed=6, regions=list(small_regions),
        sim_config=SimulationConfig(epoch_s=1800.0, eval_step_s=300.0,
                                    seed=6))
    # Even premium-only sees (slightly) different daily tails.
    p999 = result.series("latency_p999_ms")
    assert p999[0] != p999[1]


def test_pricing_shared_across_days(small_regions):
    """Costs are comparable day to day (same fee tables)."""
    result = run_multi_day(
        2, xron(), seed=7, regions=list(small_regions),
        sim_config=SimulationConfig(epoch_s=1800.0, eval_step_s=300.0,
                                    seed=7))
    costs = result.series("network_cost")
    # Weekday demand is similar day to day; wildly different costs would
    # indicate re-drawn pricing.
    assert costs.max() / costs.min() < 3.0
