"""Soak leak detector (issue #9): a short serve run must be flat.

Runs the service flat-out (no wall pacing) over a compressed window
under the rotating chaos schedule — crashes, warm restarts, two-phase
installs, telemetry streaming all active — and asserts the resource
profile stays bounded:

* no orphaned child processes after the drain,
* the open-fd count is flat between the first and last heartbeat,
* tracked Python objects do not drift unboundedly across repeat runs
  (the second window allocates no net objects the first didn't),
* heartbeat RSS stays within a small envelope of the first sample.

Marked ``soak`` so an iteration loop can skip it (``-m 'not soak'``);
it is deliberately fast enough to stay in the default tier-1 run.
"""

import asyncio
import gc
import multiprocessing

import pytest

from repro import obs
from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.service import (ServiceConfig, XRONService,
                                build_soak_schedule)
from repro.core.variants import xron
from repro.resilience.config import resilience
from repro.traffic.demand import DemandModel
from repro.underlay.config import UnderlayConfig
from repro.underlay.regions import default_regions
from repro.underlay.topology import build_underlay

pytestmark = pytest.mark.soak

#: One compressed soak window, simulated seconds.
WINDOW_S = 1200.0


def _build_soak_system(seed=13):
    from dataclasses import replace

    regions = default_regions()[:3]
    codes = [r.code for r in regions]
    underlay = build_underlay(regions, UnderlayConfig(horizon_s=3600.0),
                              seed=seed)
    demand = DemandModel(regions, seed=seed)
    schedule = build_soak_schedule(0.0, WINDOW_S, codes, period_s=300.0)
    return EventDrivenXRON(
        underlay, demand, variant=replace(xron(), elastic=False),
        sim_config=SimulationConfig(epoch_s=60.0, eval_step_s=60.0,
                                    seed=seed, demand_scale=0.05,
                                    initial_gateways=4),
        measure_interval_s=5.0,
        faults=schedule, resilience=resilience())


def _run_window(tmp_path, tag):
    system = _build_soak_system()
    with obs.capture() as hub:
        hub.attach_stream(tmp_path / f"{tag}.jsonl")
        service = XRONService(
            system,
            ServiceConfig(duration_s=WINDOW_S, heartbeat_s=120.0,
                          checkpoint_path=tmp_path / f"{tag}-cp.json"))
        result = asyncio.run(service.run_async())
        hub.detach_stream(close=True)
    assert result.drained
    return result


def test_soak_window_leaks_nothing(tmp_path):
    baseline_children = len(multiprocessing.active_children())

    result = _run_window(tmp_path, "leak")

    # Chaos actually exercised the lifecycle seams.
    counters = result.eventsim.fault_counters
    assert counters["gateways_crashed"] >= 1
    assert counters["gateways_restarted"] >= 1
    assert result.epochs >= WINDOW_S / 60.0

    # No orphaned workers: every pool and fork child was reaped.
    assert len(multiprocessing.active_children()) == baseline_children

    # Open fds flat across the soak (heartbeats sample /proc/self/fd).
    h0, h1 = result.health_first, result.health_last
    assert h0 is not None and h1 is not None
    if h0["open_fds"] is not None:  # /proc may be absent off-Linux
        assert h1["open_fds"] == h0["open_fds"]
    assert h1["children"] == 0

    # RSS envelope: a short window must not balloon.  The acceptance
    # budget is <5%/compressed-day; this window is 1/72 of a day, so
    # 10% here is already generous slack for allocator noise.
    if h0["rss_kb"] and h1["rss_kb"]:
        assert h1["rss_kb"] <= h0["rss_kb"] * 1.10


def test_repeat_windows_do_not_accumulate_objects(tmp_path):
    """Back-to-back service windows in one process stay object-flat.

    The first window pays every lazy import and cache fill; the second
    must come out near-neutral — a leaked controller, cluster, stream
    handle, or asyncio task would show up as monotonic object growth.
    """
    _run_window(tmp_path, "warmup")
    gc.collect()
    before = len(gc.get_objects())
    _run_window(tmp_path, "second")
    gc.collect()
    after = len(gc.get_objects())
    # Generous absolute slack for interned/cached odds and ends; a
    # leaked system (clusters, NIB windows, sessions) is tens of
    # thousands of objects.
    assert after - before < 10_000
