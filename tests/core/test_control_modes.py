"""Golden equivalence: control modes are byte-identical end to end.

`Controller(control_mode=...)` promises that "monolithic", "sharded"
and "incremental" are pure performance seams — same assignments, same
forwarding tables, same reaction plans, same simulated sessions, bit
for bit.  These tests run the full simulators (including under an
active chaos schedule that kills the controller, crashes gateways and
blinds probes) once per mode and compare the canonical output bytes.
"""

import json
from dataclasses import replace

import pytest

from repro import obs
from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.simulator import EpochSimulator
from repro.core.variants import xron
from repro.faults import (FaultSchedule, controller_outage, gateway_crash,
                          probe_blackout)
from repro.traffic.demand import DemandModel
from repro.underlay.config import UnderlayConfig
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.scenarios import quiet_link
from repro.underlay.topology import build_underlay

MODES = ("monolithic", "sharded", "incremental")


@pytest.fixture(autouse=True)
def clean_hub():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


def _build(regions, seed=5):
    config = UnderlayConfig(horizon_s=7200.0)
    config.internet.base_loss_min = 1e-6
    config.internet.base_loss_max = 1e-5
    config.internet.diurnal_loss_amp = 0.0
    for tier in (config.internet, config.premium):
        tier.short_events_per_day = 0.0
        tier.long_events_per_day = 0.0
    u = build_underlay(regions, config, seed=seed)
    for (a, b) in u.pairs:
        for lt in (LinkType.INTERNET, LinkType.PREMIUM):
            quiet_link(u, a, b, lt)
    return u, DemandModel(regions, seed=seed)


_FAULTS = (controller_outage(3640.0, 3700.0),
           gateway_crash(3620.0, 40.0, region="SIN", count=2),
           probe_blackout(3610.0, 30.0, region="HGH"))


def _eventsim_bytes(regions, mode, faults):
    """One event-driven run in ``mode``; canonical bytes of its output."""
    u, d = _build(regions)
    sim = EventDrivenXRON(
        u, d,
        # Elasticity off pins the fleets so the injected gateway crash
        # has victims to take (mirrors tests/faults).
        variant=replace(xron(), elastic=False),
        sim_config=SimulationConfig(epoch_s=30.0, eval_step_s=10.0,
                                    seed=5, demand_scale=0.05,
                                    control_mode=mode),
        faults=FaultSchedule.of(*faults) if faults else None)
    if mode == "sharded":
        # The 3-region toy is far below the sharding threshold; force
        # the pool into the epoch path so the mode is actually exercised.
        sim.controller._pool.min_shard_rows = 1
    result = sim.run(3600.0, 120.0)
    doc = {"events": result.events_processed,
           "probe_bytes": result.probe_bytes,
           "epochs": len(result.control_outputs),
           "gateways": dict(result.gateway_counts),
           "fault_counters": result.fault_counters,
           "sessions": {
               f"{pair[0]}->{pair[1]}": [list(rec.times),
                                         list(rec.latency_ms),
                                         list(rec.loss_rate),
                                         list(rec.on_backup)]
               for pair, rec in sorted(result.sessions.items())}}
    return json.dumps(doc, sort_keys=True).encode()


def _epochsim_bytes(regions, mode):
    u, d = _build(regions)
    sim = EpochSimulator(
        u, d, xron(),
        sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=10.0, seed=5,
                                    control_mode=mode))
    if mode == "sharded":
        sim.controller._pool.min_shard_rows = 1
    result = sim.run(3600.0, 900.0)
    doc = {"latency": result.latency_ms.round(9).tolist(),
           "loss": result.loss_rate.round(9).tolist(),
           "on_backup": result.on_backup.astype(int).tolist(),
           "containers": result.containers.tolist(),
           "demand": result.demand_mbps.round(9).tolist()}
    return json.dumps(doc, sort_keys=True).encode()


class TestEventSim:
    @pytest.mark.parametrize("mode", MODES[1:])
    def test_byte_identical_without_faults(self, regions, mode):
        assert (_eventsim_bytes(regions, mode, None)
                == _eventsim_bytes(regions, "monolithic", None))

    @pytest.mark.parametrize("mode", MODES[1:])
    def test_byte_identical_under_chaos_schedule(self, regions, mode):
        """Controller outages + gateway crashes + probe blackouts: the
        incremental engine sees genuinely dirty epochs (fleets change,
        snapshots shift mid-fault) and must still match bit for bit."""
        assert (_eventsim_bytes(regions, mode, _FAULTS)
                == _eventsim_bytes(regions, "monolithic", _FAULTS))


class TestEpochSim:
    @pytest.mark.parametrize("mode", MODES[1:])
    def test_byte_identical(self, regions, mode):
        assert (_epochsim_bytes(regions, mode)
                == _epochsim_bytes(regions, "monolithic"))
