"""Tests for system variant specifications."""

import pytest

from repro.core.variants import (VariantSpec, internet_only, premium_only,
                                 standard_variants, xron, xron_basic,
                                 xron_premium, xron_symmetric)


def test_xron_is_fully_featured():
    v = xron()
    assert v.internet_allowed and v.premium_allowed
    assert v.overlay_relaying and v.fast_reaction and v.elastic
    assert not v.symmetric_only


def test_internet_only_is_the_legacy_service():
    v = internet_only()
    assert not v.premium_allowed
    assert not v.overlay_relaying
    assert not v.fast_reaction
    assert not v.elastic


def test_premium_only_is_direct_premium():
    v = premium_only()
    assert not v.internet_allowed
    assert not v.overlay_relaying


def test_xron_basic_disables_only_reaction():
    v = xron_basic()
    assert not v.fast_reaction
    assert v.overlay_relaying and v.elastic


def test_xron_premium_restricts_tier():
    v = xron_premium()
    assert not v.internet_allowed
    assert v.overlay_relaying


def test_symmetric_flag():
    assert xron_symmetric().symmetric_only


def test_standard_trio_order():
    names = [v.name for v in standard_variants()]
    assert names == ["XRON", "Internet only", "Premium only"]


def test_variant_must_allow_some_tier():
    with pytest.raises(ValueError):
        VariantSpec(name="broken", internet_allowed=False,
                    premium_allowed=False)


def test_reaction_requires_premium():
    with pytest.raises(ValueError):
        VariantSpec(name="broken", premium_allowed=False, fast_reaction=True)
