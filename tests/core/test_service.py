"""Tests for the always-on service mode (`repro.core.service`)."""

import asyncio
import json
import multiprocessing

import pytest

from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.service import (ServiceConfig, ServiceError, VirtualClock,
                                XRONService, build_soak_schedule)
from repro.core.variants import xron
from repro.faults import spec as fault_spec
from repro.faults.spec import FaultSchedule
from repro.resilience.config import resilience
from repro.traffic.demand import DemandModel
from repro.underlay.config import UnderlayConfig
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.scenarios import quiet_link
from repro.underlay.topology import build_underlay


@pytest.fixture(scope="module")
def regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


def _build_system(regions, seed=5, faults=None, with_resilience=True,
                  measure_interval_s=5.0):
    config = UnderlayConfig(horizon_s=7200.0)
    config.internet.base_loss_min = 1e-6
    config.internet.base_loss_max = 1e-5
    config.internet.diurnal_loss_amp = 0.0
    for tier in (config.internet, config.premium):
        tier.short_events_per_day = 0.0
        tier.long_events_per_day = 0.0
    underlay = build_underlay(regions, config, seed=seed)
    for (a, b) in underlay.pairs:
        for lt in (LinkType.INTERNET, LinkType.PREMIUM):
            quiet_link(underlay, a, b, lt)
    demand = DemandModel(regions, seed=seed)
    from dataclasses import replace
    return EventDrivenXRON(
        underlay, demand, variant=replace(xron(), elastic=False),
        sim_config=SimulationConfig(epoch_s=60.0, eval_step_s=60.0,
                                    seed=seed, demand_scale=0.05,
                                    initial_gateways=4),
        measure_interval_s=measure_interval_s,
        faults=faults,
        resilience=resilience() if with_resilience else None)


# ---------------------------------------------------------------- the clock
def test_clock_fires_timers_in_time_priority_seq_order():
    clock = VirtualClock(0.0)
    order = []
    clock.schedule_at(10.0, lambda: order.append("b"), priority=1)
    clock.schedule_at(10.0, lambda: order.append("a"), priority=0)
    clock.schedule_at(5.0, lambda: order.append("first"), priority=3)
    clock.schedule_at(10.0, lambda: order.append("c"), priority=1)

    async def main():
        return await clock.drive(100.0, asyncio.Event())

    reason = asyncio.run(main())
    assert reason == "drained"
    assert order == ["first", "a", "b", "c"]
    assert clock.events_processed == 4


def test_clock_rejects_scheduling_in_the_past():
    from repro.sim.engine import SimulationError
    clock = VirtualClock(100.0)
    with pytest.raises(SimulationError):
        clock.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        clock.schedule_at(99.0, lambda: None)


def test_clock_interleaves_sleepers_and_timers_deterministically():
    clock = VirtualClock(0.0)
    order = []
    clock.schedule_at(20.0, lambda: order.append("timer@20"), priority=0)

    async def sleeper(name, t, priority):
        await clock.sleep_until(t, priority)
        order.append(name)
        clock.release()

    async def main():
        clock.register()
        clock.register()
        asyncio.ensure_future(sleeper("low@20", 20.0, 2))
        asyncio.ensure_future(sleeper("high@20", 20.0, -1))
        return await clock.drive(100.0, asyncio.Event())

    reason = asyncio.run(main())
    assert reason == "drained"
    assert order == ["high@20", "timer@20", "low@20"]


def test_clock_completes_at_window_end_without_draining():
    clock = VirtualClock(0.0)
    fired = []
    clock.schedule_at(50.0, lambda: fired.append(50.0))
    clock.schedule_at(150.0, lambda: fired.append(150.0))

    async def main():
        return await clock.drive(100.0, asyncio.Event())

    assert asyncio.run(main()) == "completed"
    assert fired == [50.0]
    assert clock.now == 100.0


# -------------------------------------------------------------- the service
def test_service_runs_a_window_and_drains(tmp_path, regions):
    system = _build_system(regions)
    config = ServiceConfig(duration_s=300.0, heartbeat_s=60.0,
                           checkpoint_path=tmp_path / "cp.json")
    service = XRONService(system, config, start_s=0.0)
    result = asyncio.run(service.run_async())
    assert result.stop_reason == "completed"
    assert result.drained
    assert result.sim_t1 == 300.0
    # Epochs at t=0, 60, ..., 300 inclusive.
    assert result.epochs == 6
    assert result.heartbeats == 5
    assert result.eventsim.probe_bytes > 0
    assert any(r.times for r in result.eventsim.sessions.values())
    # The drain persisted a resumable envelope.
    envelope = XRONService.load_envelope(tmp_path / "cp.json")
    assert envelope["sim_t"] == 300.0
    assert envelope["epoch_seq"] == 6
    # Teardown left no stranded fork workers.
    assert multiprocessing.active_children() == []


def test_service_is_deterministic(regions):
    def run_once():
        system = _build_system(regions)
        service = XRONService(
            system, ServiceConfig(duration_s=300.0, heartbeat_s=150.0))
        result = asyncio.run(service.run_async())
        return result

    a, b = run_once(), run_once()
    assert a.events_processed == b.events_processed
    assert a.epochs == b.epochs
    for pair in a.eventsim.sessions:
        assert (a.eventsim.sessions[pair].latency_ms
                == b.eventsim.sessions[pair].latency_ms)


def test_service_matches_batch_engine(regions):
    """The asyncio clock reproduces the batch engine's run exactly.

    Same components, same priorities, same RNG draw order: the session
    measurements and fault accounting must be identical to
    `EventDrivenXRON.run` over the same window.
    """
    schedule = FaultSchedule.of(
        fault_spec.gateway_crash(100.0, 60.0, regions[0].code),
        fault_spec.probe_blackout(200.0, 60.0, region=regions[1].code))
    batch = _build_system(regions, faults=schedule)
    batch_result = batch.run(0.0, 400.0)
    batch.close()

    served = _build_system(regions, faults=schedule)
    service = XRONService(served, ServiceConfig(duration_s=400.0))
    live_result = asyncio.run(service.run_async()).eventsim

    assert len(live_result.control_outputs) == len(
        batch_result.control_outputs)
    assert live_result.fault_counters == batch_result.fault_counters
    assert live_result.probe_bytes == batch_result.probe_bytes
    for pair, record in batch_result.sessions.items():
        live = live_result.sessions[pair]
        assert live.times == record.times
        assert live.latency_ms == record.latency_ms
        assert live.on_backup == record.on_backup


def test_service_stop_request_drains_immediately(tmp_path, regions):
    system = _build_system(regions)
    config = ServiceConfig(duration_s=600.0, heartbeat_s=60.0,
                           checkpoint_path=tmp_path / "cp.json")
    service = XRONService(system, config)

    async def main():
        task = asyncio.ensure_future(service.run_async())
        while service.clock is None or service.clock.now < 150.0:
            await asyncio.sleep(0.001)
        service.request_stop("test-stop")
        return await task

    result = asyncio.run(main())
    assert result.stop_reason == "test-stop"
    assert result.drained
    assert 150.0 <= result.sim_t1 < 600.0
    # The drain checkpoint reflects the stop time, not the window end.
    envelope = XRONService.load_envelope(tmp_path / "cp.json")
    assert envelope["sim_t"] <= result.sim_t1


def test_component_error_drains_and_raises(regions):
    system = _build_system(regions)
    service = XRONService(system, ServiceConfig(duration_s=300.0))

    def boom():
        raise RuntimeError("injected component failure")

    system._flush_passive = lambda sim: boom()
    with pytest.raises(ServiceError, match="injected component failure"):
        asyncio.run(service.run_async())
    # The drain still ran: no stranded children, controller closed.
    assert multiprocessing.active_children() == []


# ------------------------------------------------------- checkpoint/restore
def test_restore_mid_schedule_does_not_replay_fired_faults(tmp_path, regions):
    """A resumed soak skips crash windows that already fired (issue #9).

    Two crash windows; the first leg runs past the first, drains, and
    the second leg restores from the envelope and finishes the window.
    Total crashes across both legs must equal the scheduled count —
    under the old absolute-offset assumption the restored run would
    re-fire the first window and crash twice the gateways.
    """
    schedule = FaultSchedule.of(
        fault_spec.gateway_crash(100.0, 60.0, regions[0].code),
        fault_spec.gateway_crash(400.0, 60.0, regions[1].code))
    path = tmp_path / "cp.json"

    leg1_system = _build_system(regions, faults=schedule)
    leg1 = XRONService(leg1_system,
                       ServiceConfig(duration_s=250.0, checkpoint_path=path))
    leg1_result = asyncio.run(leg1.run_async())
    assert leg1_result.eventsim.fault_counters["gateways_crashed"] == 1
    envelope = XRONService.load_envelope(path)
    inner = json.loads(envelope["checkpoint"])
    assert inner["fault_state"]["fired"] == [0]

    leg2_system = _build_system(regions, faults=schedule)
    leg2 = XRONService(leg2_system,
                       ServiceConfig(duration_s=600.0, checkpoint_path=path))
    t = leg2.restore_from(envelope)
    assert t == pytest.approx(250.0)
    leg2.config.duration_s = 600.0 - t
    leg2_result = asyncio.run(leg2.run_async())

    # Counters are imported with the checkpoint, so the leg-2 totals are
    # cumulative: exactly one crash per scheduled window, never two.
    counters = leg2_result.eventsim.fault_counters
    assert counters["gateways_crashed"] == 2
    assert counters["gateways_restarted"] == 2
    assert sorted(leg2_system._injector.export_state()["fired"]) == [0, 1]


def test_restore_rejects_mismatched_schedule(tmp_path, regions):
    schedule = FaultSchedule.of(
        fault_spec.gateway_crash(100.0, 60.0, regions[0].code))
    path = tmp_path / "cp.json"
    leg1 = XRONService(_build_system(regions, faults=schedule),
                       ServiceConfig(duration_s=200.0, checkpoint_path=path))
    asyncio.run(leg1.run_async())
    envelope = XRONService.load_envelope(path)

    other = FaultSchedule.of(
        fault_spec.gateway_crash(500.0, 60.0, regions[0].code))
    leg2 = XRONService(_build_system(regions, faults=other),
                       ServiceConfig(duration_s=600.0))
    with pytest.raises(ValueError, match="schedule"):
        leg2.restore_from(envelope)


def test_restore_resumes_controller_state(tmp_path, regions):
    """The restored controller predicts from the checkpointed SIB."""
    path = tmp_path / "cp.json"
    leg1_system = _build_system(regions)
    leg1 = XRONService(leg1_system,
                       ServiceConfig(duration_s=300.0, checkpoint_path=path))
    asyncio.run(leg1.run_async())
    sib_state = leg1_system.controller.sib.export_state()

    leg2_system = _build_system(regions)
    leg2 = XRONService(leg2_system,
                       ServiceConfig(duration_s=600.0, checkpoint_path=path))
    t = leg2.restore_from(XRONService.load_envelope(path))
    assert t == pytest.approx(300.0)
    # SIB demand history survived the round trip (the expensive state).
    assert leg2_system.controller.sib.export_state() == sib_state
    assert leg2_system._epoch_seq == leg1_system._epoch_seq
    # The last committed tables are live before the first epoch runs.
    for code, cluster in leg2_system.clusters.items():
        assert (cluster.current_entries()
                == leg1_system.clusters[code].current_entries())


def test_envelope_round_trip_rejects_foreign_files(tmp_path):
    bogus = tmp_path / "not-an-envelope.json"
    bogus.write_text(json.dumps({"record": "something-else"}))
    with pytest.raises(ValueError, match="not a service checkpoint"):
        XRONService.load_envelope(bogus)


# ------------------------------------------------------------ soak schedule
def test_build_soak_schedule_is_deterministic_and_sorted():
    codes = ["HGH", "SIN", "FRA"]
    a = build_soak_schedule(0.0, 3600.0, codes)
    b = build_soak_schedule(0.0, 3600.0, codes)
    assert a.to_json() == b.to_json()
    assert len(a.specs) == 6  # lead 120, period 600, tail margin 180
    starts = [s.start_s for s in a.specs]
    assert starts == sorted(starts)
    kinds = {s.kind for s in a.specs}
    assert len(kinds) == 6  # the rotation walks the taxonomy


def test_build_soak_schedule_requires_regions():
    with pytest.raises(ValueError):
        build_soak_schedule(0.0, 3600.0, [])


def test_soak_rotation_covers_the_entire_fault_taxonomy():
    """The rotation is derived from `FaultKind`: every kind has a
    builder, and a window long enough for one full rotation fires every
    kind exactly once, in enum order."""
    from repro.core.service import _SOAK_BUILDERS

    assert set(_SOAK_BUILDERS) == set(fault_spec.FaultKind)
    codes = ["HGH", "SIN", "FRA"]
    n = len(fault_spec.FaultKind)
    schedule = build_soak_schedule(0.0, 120.0 + (n - 1) * 600.0 + 180.0,
                                   codes)
    assert [s.kind for s in schedule.specs] == list(fault_spec.FaultKind)


def test_soak_partition_slot_severs_a_multi_region_set():
    codes = ["HGH", "SIN", "FRA"]
    schedule = build_soak_schedule(0.0, 2 * 10 * 600.0, codes)
    partitions = [s for s in schedule.specs
                  if s.kind is fault_spec.FaultKind.CONTROL_PARTITION]
    assert partitions
    for spec in partitions:
        assert len(spec.regions) == 2
        assert set(spec.regions) <= set(codes)


def test_soak_rotation_first_slots_are_stable():
    """Short chaos windows (CI's 30-minute soak) must keep firing the
    same leading kinds the pre-taxonomy rotation fired."""
    schedule = build_soak_schedule(0.0, 1800.0, ["HGH", "SIN"])
    assert [s.kind for s in schedule.specs] == [
        fault_spec.FaultKind.GATEWAY_CRASH,
        fault_spec.FaultKind.PROBE_BLACKOUT,
        fault_spec.FaultKind.REPORT_DROP,
    ]
