"""End-to-end ordering tests: the paper's headline comparisons must hold
qualitatively even at small scale."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.system import XRONSystem
from repro.core.variants import internet_only, premium_only, xron, xron_basic
from repro.underlay.config import UnderlayConfig


@pytest.fixture(scope="module")
def results():
    """One two-hour busy-period run per §6.1 variant, 11 regions."""
    system = XRONSystem(
        seed=1,
        underlay_config=UnderlayConfig(horizon_s=14 * 3600.0),
        sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=10.0, seed=1))
    out = {}
    for variant in (xron(), internet_only(), premium_only(), xron_basic()):
        out[variant.name] = system.run(variant=variant, start_hour=9.0,
                                       hours=2.0)
    return out


def test_xron_stall_ratio_much_lower_than_internet(results):
    """Paper: -77% video stall ratio."""
    x = results["XRON"].qoe_summary().stall_ratio
    i = results["Internet only"].qoe_summary().stall_ratio
    assert x < i * 0.5


def test_xron_close_to_premium_on_stalls(results):
    x = results["XRON"].qoe_summary().stall_ratio
    p = results["Premium only"].qoe_summary().stall_ratio
    assert x - p < 0.02


def test_xron_frame_rate_above_internet(results):
    """Paper: +12% frame rate."""
    x = results["XRON"].qoe_summary().mean_fps
    i = results["Internet only"].qoe_summary().mean_fps
    assert x > i * 1.02


def test_xron_bad_audio_much_lower(results):
    """Paper: -65.2% bad audio."""
    x = results["XRON"].qoe_summary().bad_audio_fraction
    i = results["Internet only"].qoe_summary().bad_audio_fraction
    assert x < i * 0.6


def test_tail_latency_improvement(results):
    """Paper Table 2: p99.9 latency 9x better than Internet-only."""
    x = results["XRON"].latency_percentiles(weighted=False)["99.9%"]
    i = results["Internet only"].latency_percentiles(weighted=False)["99.9%"]
    assert i / x > 3.0


def test_tail_loss_improvement(results):
    """Paper Table 3: p99.9 loss 263x better; we require >3x."""
    x = results["XRON"].loss_percentiles(weighted=False)["99.9%"]
    i = results["Internet only"].loss_percentiles(weighted=False)["99.9%"]
    assert i / x > 3.0


def test_fast_reaction_beats_basic(results):
    """Paper Fig. 18: fast reaction removes most large-latency cases."""
    x = results["XRON"].latency_ms
    b = results["XRON-Basic"].latency_ms
    big_x = int(np.sum(x > 1000.0))
    big_b = int(np.sum(b > 1000.0))
    assert big_x < big_b * 0.5


def test_cost_ordering(results):
    """Paper Fig. 17d: Internet-only < XRON << premium-only."""
    costs = {name: res.ledger.breakdown().total
             for name, res in results.items()}
    assert costs["Internet only"] < costs["XRON"] < costs["Premium only"]
    # Paper: XRON is 4.73x cheaper than premium-only.
    assert costs["Premium only"] / costs["XRON"] > 2.0


def test_premium_usage_is_minor_for_xron(results):
    """Paper Fig. 17b: ~3% premium share; we require well under half."""
    assert results["XRON"].premium_traffic_share() < 0.35


def test_hop_counts_small(results):
    """Paper Fig. 17a: 1.19 average hops."""
    samples = results["XRON"].normal_hop_samples
    hops = np.array([h for h, __ in samples], dtype=float)
    weights = np.array([w for __, w in samples])
    assert 1.0 <= np.average(hops, weights=weights) < 1.8
