"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.controlplane.controller import Controller
from repro.controlplane.model import ControlConfig
from repro.controlplane.nib import LinkReport
from repro.core.config import SimulationConfig
from repro.core.simulator import EpochSimulator
from repro.core.variants import xron
from repro.traffic.demand import DemandModel
from repro.traffic.matrix import TrafficMatrix
from repro.underlay.config import UnderlayConfig
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.topology import build_underlay


@pytest.fixture(scope="module")
def two_regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code["HGH"], by_code["IAD"]]


class TestTwoRegionDeployment:
    """The minimum topology: no relaying is possible, only tier choice."""

    def test_simulation_runs(self, two_regions):
        u = build_underlay(two_regions, UnderlayConfig(horizon_s=7200.0),
                           seed=3)
        d = DemandModel(two_regions, seed=3)
        sim = EpochSimulator(u, d, xron(),
                             SimulationConfig(epoch_s=600.0,
                                              eval_step_s=60.0, seed=3))
        result = sim.run(0.0, 1800.0)
        assert result.latency_ms.shape[0] == 2
        assert np.all(result.latency_ms > 0)
        # All normal paths are necessarily direct.
        assert all(h == 1 for h, __ in result.normal_hop_samples)


class TestZeroDemand:
    def test_controller_epoch_with_zero_demand(self):
        codes = ["A", "B"]
        ctrl = Controller(codes, ControlConfig())
        for a, b in (("A", "B"), ("B", "A")):
            for lt in LinkType:
                ctrl.nib.update(LinkReport(a, b, lt, 100.0, 0.0, 0.0))
        matrix = TrafficMatrix(codes, {("A", "B"): 0.0, ("B", "A"): 0.0})
        out = ctrl.run_epoch(0.0, matrix, {"A": 2, "B": 2})
        assert out.path_result.assignments == []
        # Idle regions scale down to the floor of one gateway.
        assert out.capacity.target == {"A": 1, "B": 1}

    def test_simulator_with_near_zero_demand(self, two_regions):
        u = build_underlay(two_regions, UnderlayConfig(horizon_s=7200.0),
                           seed=4)
        d = DemandModel(two_regions, seed=4)
        sim = EpochSimulator(
            u, d, xron(),
            SimulationConfig(epoch_s=600.0, eval_step_s=60.0, seed=4,
                             demand_scale=1e-9))
        result = sim.run(0.0, 1200.0)
        # Paths still evaluated (fallback direct) and QoE well defined.
        q = result.qoe_summary()
        assert 0.0 <= q.stall_ratio <= 1.0


class TestExtremeConfigs:
    def test_single_gateway_everywhere(self, two_regions):
        u = build_underlay(two_regions, UnderlayConfig(horizon_s=7200.0),
                           seed=5)
        d = DemandModel(two_regions, seed=5)
        sim = EpochSimulator(
            u, d, xron(),
            SimulationConfig(epoch_s=600.0, eval_step_s=60.0, seed=5,
                             initial_gateways=1))
        result = sim.run(0.0, 1200.0)
        assert np.all(result.containers >= 1)

    def test_eval_step_equal_to_epoch(self, two_regions):
        u = build_underlay(two_regions, UnderlayConfig(horizon_s=7200.0),
                           seed=6)
        d = DemandModel(two_regions, seed=6)
        sim = EpochSimulator(
            u, d, xron(),
            SimulationConfig(epoch_s=300.0, eval_step_s=300.0, seed=6))
        result = sim.run(0.0, 900.0)
        assert result.latency_ms.shape[1] == 3

    def test_eval_step_larger_than_epoch_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(epoch_s=300.0, eval_step_s=301.0)


class TestControllerRobustness:
    def test_partial_nib_still_routes_reachable_pairs(self):
        """Reports for only one direction: that direction still routes."""
        codes = ["A", "B", "C"]
        ctrl = Controller(codes, ControlConfig(container_capacity_mbps=100.0))
        for lt in LinkType:
            ctrl.nib.update(LinkReport("A", "B", lt, 100.0, 0.0, 0.0))
        matrix = TrafficMatrix(codes, {("A", "B"): 10.0, ("B", "A"): 10.0})
        out = ctrl.run_epoch(0.0, matrix, {c: 4 for c in codes})
        routed = {(a.stream.src, a.stream.dst)
                  for a in out.path_result.assignments}
        assert ("A", "B") in routed
        assert ("B", "A") not in routed

    def test_all_links_reported_dead(self):
        codes = ["A", "B"]
        ctrl = Controller(codes, ControlConfig())
        for a, b in (("A", "B"), ("B", "A")):
            for lt in LinkType:
                ctrl.nib.update(LinkReport(a, b, lt, 50_000.0, 1.0, 0.0))
        matrix = TrafficMatrix(codes, {("A", "B"): 10.0})
        out = ctrl.run_epoch(0.0, matrix, {"A": 2, "B": 2})
        # Best-effort fallback still carries the stream, flagged.
        assert out.path_result.assignments
        assert not out.path_result.assignments[0].meets_constraints


class TestWeekendTraffic:
    def test_weekend_day_simulates(self, two_regions):
        """Day 5 of the week (weekend factor) must not break anything."""
        u = build_underlay(two_regions,
                           UnderlayConfig(horizon_s=6 * 86400.0), seed=7)
        d = DemandModel(two_regions, seed=7)
        sim = EpochSimulator(
            u, d, xron(),
            SimulationConfig(epoch_s=900.0, eval_step_s=300.0, seed=7))
        result = sim.run(5 * 86400.0, 3600.0)
        assert np.all(result.demand_mbps > 0)
