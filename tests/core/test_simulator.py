"""Integration tests for the epoch simulator."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.system import XRONSystem
from repro.core.variants import (internet_only, premium_only, xron,
                                 xron_basic)
from repro.underlay.config import UnderlayConfig


@pytest.fixture(scope="module")
def small_system(small_regions):
    return XRONSystem(
        regions=list(small_regions), seed=3,
        underlay_config=UnderlayConfig(horizon_s=11 * 3600.0),
        sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=10.0, seed=3))


# `small_regions` is session-scoped; re-export it at module scope for the
# module-scoped system fixture.
@pytest.fixture(scope="module")
def small_regions():
    from repro.underlay.regions import default_regions
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA", "IAD")]


@pytest.fixture(scope="module")
def xron_result(small_system):
    return small_system.run(variant=xron(), start_hour=8.0, hours=1.0)


class TestShapes:
    def test_array_dimensions(self, xron_result, small_system):
        n_pairs = len(small_system.underlay.pairs)
        n_steps = int(3600.0 / 10.0)
        n_epochs = 12
        assert xron_result.latency_ms.shape == (n_pairs, n_steps)
        assert xron_result.loss_rate.shape == (n_pairs, n_steps)
        assert xron_result.on_backup.shape == (n_pairs, n_steps)
        assert xron_result.demand_mbps.shape == (n_pairs, n_epochs)
        assert xron_result.containers.shape == (4, n_epochs)

    def test_times_grid(self, xron_result):
        assert xron_result.times[0] == 8.0 * 3600.0
        np.testing.assert_allclose(np.diff(xron_result.times), 10.0)

    def test_pair_index(self, xron_result):
        idx = xron_result.pair_index("HGH", "SIN")
        assert xron_result.pairs[idx] == ("HGH", "SIN")

    def test_sample_weights_shape(self, xron_result):
        w = xron_result.sample_weights()
        assert w.shape == xron_result.latency_ms.shape
        assert np.all(w >= 0)


class TestPhysicalSanity:
    def test_latencies_positive(self, xron_result):
        assert np.all(xron_result.latency_ms > 0)

    def test_losses_in_unit_interval(self, xron_result):
        assert np.all(xron_result.loss_rate >= 0)
        assert np.all(xron_result.loss_rate <= 1)

    def test_demand_recorded_positive(self, xron_result):
        assert np.all(xron_result.demand_mbps > 0)

    def test_containers_at_least_one(self, xron_result):
        assert np.all(xron_result.containers >= 1)

    def test_cost_ledger_populated(self, xron_result):
        b = xron_result.ledger.breakdown()
        assert b.network_cost > 0
        assert b.container_cost > 0  # overlay variants bill containers

    def test_hop_samples_recorded(self, xron_result):
        assert xron_result.normal_hop_samples
        hops = [h for h, __ in xron_result.normal_hop_samples]
        assert all(1 <= h <= 3 for h in hops)


class TestVariantBehaviour:
    def test_internet_only_uses_no_premium(self, small_system):
        res = small_system.run(variant=internet_only(), start_hour=8.0,
                               hours=0.5)
        assert res.ledger.premium_gb() == 0.0
        assert not res.on_backup.any()
        # No overlay: no gateway containers billed.
        assert res.ledger.breakdown().container_cost == 0.0

    def test_premium_only_uses_no_internet(self, small_system):
        res = small_system.run(variant=premium_only(), start_hour=8.0,
                               hours=0.5)
        assert res.ledger.internet_gb() == 0.0
        assert res.premium_traffic_share() == 1.0

    def test_xron_basic_never_on_backup(self, small_system):
        res = small_system.run(variant=xron_basic(), start_hour=8.0,
                               hours=0.5)
        assert not res.on_backup.any()

    def test_xron_reaction_produces_backups_eventually(self, small_system):
        res = small_system.run(variant=xron(), start_hour=8.0, hours=1.0)
        # With natural degradation rates, an hour over 12 pairs sees some
        # reaction activity.
        assert res.backup_fraction() >= 0.0  # may be tiny but well-defined
        assert res.premium_traffic_share() < 0.9

    def test_deterministic_across_runs(self, small_regions):
        def run_once():
            system = XRONSystem(
                regions=list(small_regions), seed=7,
                underlay_config=UnderlayConfig(horizon_s=2 * 3600.0),
                sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=30.0,
                                            seed=7))
            return system.run(variant=xron(), start_hour=0.0, hours=0.5)

        a, b = run_once(), run_once()
        np.testing.assert_array_equal(a.latency_ms, b.latency_ms)
        np.testing.assert_array_equal(a.on_backup, b.on_backup)


class TestResultAnalytics:
    def test_percentile_tables(self, xron_result):
        lat = xron_result.latency_percentiles()
        assert lat["average"] > 0
        assert lat["99.9%"] >= lat["99%"] >= lat["95%"]
        loss = xron_result.loss_percentiles()
        assert loss["99.9%"] >= loss["95%"]

    def test_qoe_summary(self, xron_result):
        q = xron_result.qoe_summary()
        assert 0 <= q.stall_ratio <= 1
        assert 0 < q.mean_fps <= 25.0
        assert 1 <= q.mean_fluency <= 5

    def test_qoe_per_day_partitions_samples(self, xron_result):
        days = xron_result.qoe_per_day()
        assert sum(d.samples for d in days) == xron_result.latency_ms.size


class TestRouteChurn:
    def test_churn_recorded_per_epoch(self, xron_result):
        churn = xron_result.path_change_fraction
        assert churn.shape == (12,)
        assert churn[0] == 0.0
        assert np.all((churn >= 0.0) & (churn <= 1.0))
        assert 0.0 <= xron_result.mean_route_churn() <= 1.0

    def test_direct_variant_has_zero_churn(self, small_system):
        res = small_system.run(variant=internet_only(), start_hour=8.0,
                               hours=0.5)
        assert res.mean_route_churn() == 0.0
