"""Telemetry stream teardown tests (issue #9).

A soak run's stream must be complete on EVERY exit path: an exception
mid-run, a drained service shutdown, a context-managed block.  Each
part file must end with a complete, parseable JSON line — the readers'
``allow_partial_tail`` exists for process *crashes*, not for orderly
exits that simply forgot to flush.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.obs.export import read_many
from repro.obs.stream import TelemetryStream


def _all_lines_parse(paths):
    records = []
    for path in paths:
        text = path.read_text()
        assert text.endswith("\n"), f"{path} ends mid-line"
        for line in text.splitlines():
            records.append(json.loads(line))  # raises on a torn line
    return records


def _build_tiny_system(seed=7):
    from dataclasses import replace

    from repro.core.config import SimulationConfig
    from repro.core.eventsim import EventDrivenXRON
    from repro.core.variants import xron
    from repro.traffic.demand import DemandModel
    from repro.underlay.config import UnderlayConfig
    from repro.underlay.regions import default_regions
    from repro.underlay.topology import build_underlay

    regions = default_regions()[:3]
    underlay = build_underlay(regions, UnderlayConfig(horizon_s=3600.0),
                              seed=seed)
    demand = DemandModel(regions, seed=seed)
    return EventDrivenXRON(
        underlay, demand, variant=replace(xron(), elastic=False),
        sim_config=SimulationConfig(epoch_s=60.0, eval_step_s=60.0,
                                    seed=seed, demand_scale=0.05))


def test_stream_context_manager_closes(tmp_path):
    with TelemetryStream(tmp_path / "run.jsonl") as stream:
        assert not stream.closed
    assert stream.closed
    _all_lines_parse(stream.paths)


def test_exception_mid_run_still_flushes_the_stream(tmp_path):
    """An exception inside `EventDrivenXRON.run` must not strand the
    stream without its final metric deltas (the engine's finally-flush).
    """
    system = _build_tiny_system()
    with obs.capture() as hub:
        stream = hub.attach_stream(tmp_path / "crash.jsonl")
        calls = []
        original = system._measure

        def failing_measure(sim):
            calls.append(sim.now)
            if len(calls) >= 30:
                raise RuntimeError("mid-run failure")
            original(sim)

        system._measure = failing_measure
        with pytest.raises(RuntimeError, match="mid-run failure"):
            system.run(0.0, 600.0)
        system.close()
        # The finally-flush pushed the deltas accumulated since the last
        # epoch boundary — before the stream was even detached.
        assert stream.metrics_flushes > 0
        flushed_at = stream.metrics_flushes
        hub.detach_stream(close=True)
    assert stream.closed
    records = _all_lines_parse(stream.paths)
    metric_records = [r for r in records if r.get("record") == "metrics"]
    assert len(metric_records) >= flushed_at
    # The stream parses as a valid telemetry set despite the exception.
    doc = read_many([str(p) for p in stream.paths])
    assert doc.events


def test_service_drain_flushes_shutdown_record(tmp_path):
    """A drained service leaves a complete stream ending in telemetry
    that records the shutdown itself."""
    from repro.core.service import ServiceConfig, XRONService

    system = _build_tiny_system()
    with obs.capture() as hub:
        stream = hub.attach_stream(tmp_path / "soak.jsonl")
        service = XRONService(
            system, ServiceConfig(duration_s=300.0, heartbeat_s=60.0))
        result = asyncio.run(service.run_async())
        assert result.drained
        hub.detach_stream(close=True)
    records = _all_lines_parse(stream.paths)
    kinds = [r.get("kind") for r in records if r.get("record") == "event"]
    assert "service_heartbeat" in kinds
    assert "service_shutdown" in kinds
    # Nothing trails the shutdown event except its own metric deltas.
    last_event = max(i for i, r in enumerate(records)
                     if r.get("record") == "event")
    assert records[last_event]["kind"] == "service_shutdown"


def test_detach_close_is_idempotent_with_stream_exit(tmp_path):
    stream = TelemetryStream(tmp_path / "twice.jsonl")
    with stream:
        pass
    stream.close()  # second close is a no-op
    assert stream.closed
