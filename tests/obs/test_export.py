"""Telemetry JSONL writing and strict reading."""

import json

import pytest

from repro.obs.export import (TELEMETRY_SCHEMA, TelemetryFormatError,
                              read_jsonl, read_many, write_jsonl,
                              write_merged_jsonl)

EVENTS = [
    {"kind": "probe_round", "seq": 1, "t": 0.0, "region": "FRA"},
    {"kind": "failover", "seq": 2, "t": 31.0, "stream": 4},
]
METRICS = {"probing.bursts": {"kind": "counter", "value": 120.0}}


class TestRoundTrip:
    def test_single_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(path, EVENTS, metrics=METRICS, meta={"command": "run"})
        doc = read_jsonl(path)
        assert doc.header["schema"] == TELEMETRY_SCHEMA
        assert doc.header["command"] == "run"
        assert doc.kinds() == {"probe_round": 1, "failover": 1}
        assert doc.events_of("failover")[0]["stream"] == 4
        (metrics_rec,) = doc.metrics
        assert metrics_rec["metrics"] == METRICS

    def test_no_metrics_record_when_none(self, tmp_path):
        path = write_jsonl(tmp_path / "run.jsonl", EVENTS)
        assert read_jsonl(path).metrics == []

    def test_merged_suite_tags_records_with_exp(self, tmp_path):
        path = tmp_path / "suite.jsonl"
        runs = [
            {"exp": "fig20", "events": EVENTS[:1], "metrics": METRICS},
            {"exp": "fig16", "events": EVENTS[1:], "metrics": {}},
        ]
        write_merged_jsonl(path, runs, meta={"suite": "quick"})
        doc = read_jsonl(path)
        assert doc.header["suite"] == "quick"
        assert [e["exp"] for e in doc.events] == ["fig20", "fig16"]
        assert [m["exp"] for m in doc.metrics] == ["fig20", "fig16"]

    def test_creates_parent_directories(self, tmp_path):
        path = write_jsonl(tmp_path / "deep" / "run.jsonl", [])
        assert path.exists()


class TestStrictReader:
    def _lines(self, tmp_path, *lines):
        path = tmp_path / "bad.jsonl"
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_empty_file_rejected(self, tmp_path):
        path = self._lines(tmp_path)
        with pytest.raises(TelemetryFormatError, match="empty"):
            read_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = self._lines(
            tmp_path, json.dumps({"record": "event", "kind": "x"}))
        with pytest.raises(TelemetryFormatError, match="header"):
            read_jsonl(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = self._lines(
            tmp_path, json.dumps({"record": "header", "schema": 999}))
        with pytest.raises(TelemetryFormatError, match="schema"):
            read_jsonl(path)

    def test_duplicate_header_rejected(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header, header)
        with pytest.raises(TelemetryFormatError, match="duplicate"):
            read_jsonl(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = self._lines(tmp_path, "{not json")
        with pytest.raises(TelemetryFormatError, match="invalid JSON"):
            read_jsonl(path)

    def test_event_without_kind_rejected(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header,
                           json.dumps({"record": "event"}))
        with pytest.raises(TelemetryFormatError, match="kind"):
            read_jsonl(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header,
                           json.dumps({"record": "mystery"}))
        with pytest.raises(TelemetryFormatError, match="unknown"):
            read_jsonl(path)

    def test_blank_lines_tolerated(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header, "",
                           json.dumps({"record": "event", "kind": "x"}))
        assert len(read_jsonl(path).events) == 1


class TestPartialTail:
    """Crash tolerance: a truncated FINAL line may be forgiven, nothing
    else."""

    def _crashy(self, tmp_path, cut_line=-1):
        path = write_jsonl(tmp_path / "run.jsonl", EVENTS, metrics=METRICS)
        lines = path.read_text().splitlines()
        lines[cut_line] = lines[cut_line][:-15]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_truncated_tail_rejected_by_default(self, tmp_path):
        with pytest.raises(TelemetryFormatError, match="invalid JSON"):
            read_jsonl(self._crashy(tmp_path))

    def test_truncated_tail_forgiven_when_allowed(self, tmp_path):
        doc = read_jsonl(self._crashy(tmp_path), allow_partial_tail=True)
        # The chopped metrics record is dropped; the events survive.
        assert len(doc.events) == 2
        assert doc.metrics == []

    def test_truncated_middle_line_still_rejected(self, tmp_path):
        path = self._crashy(tmp_path, cut_line=1)
        with pytest.raises(TelemetryFormatError, match="invalid JSON"):
            read_jsonl(path, allow_partial_tail=True)

    def test_trailing_blank_lines_do_not_shield_a_bad_line(self, tmp_path):
        path = self._crashy(tmp_path)
        with path.open("a") as fh:
            fh.write("\n\n")
        doc = read_jsonl(path, allow_partial_tail=True)
        assert len(doc.events) == 2


class TestReadMany:
    def _write_two(self, tmp_path):
        a = write_jsonl(tmp_path / "a.jsonl", EVENTS[:1], metrics=METRICS,
                        meta={"part": 0})
        b = write_jsonl(tmp_path / "b.jsonl", EVENTS[1:],
                        meta={"part": 1})
        return a, b

    def test_concatenates_in_argument_order(self, tmp_path):
        a, b = self._write_two(tmp_path)
        doc = read_many([a, b])
        assert [e["kind"] for e in doc.events] == ["probe_round",
                                                   "failover"]
        assert len(doc.metrics) == 1

    def test_header_comes_from_first_file_plus_count(self, tmp_path):
        a, b = self._write_two(tmp_path)
        doc = read_many([a, b])
        assert doc.header["part"] == 0
        assert doc.header["files"] == 2

    def test_single_file_still_counts(self, tmp_path):
        a, __ = self._write_two(tmp_path)
        assert read_many([a]).header["files"] == 1

    def test_empty_input_rejected(self):
        with pytest.raises(TelemetryFormatError, match="no telemetry"):
            read_many([])

    def test_invalid_member_names_the_file(self, tmp_path):
        a, b = self._write_two(tmp_path)
        b.write_text("{not json\n")
        with pytest.raises(TelemetryFormatError, match="b.jsonl"):
            read_many([a, b])

    def test_partial_tail_applies_per_file(self, tmp_path):
        a, b = self._write_two(tmp_path)
        text = b.read_text()
        b.write_text(text[:-12])
        with pytest.raises(TelemetryFormatError):
            read_many([a, b])
        doc = read_many([a, b], allow_partial_tail=True)
        assert len(doc.events) == 1  # a's event; b's chopped one dropped
