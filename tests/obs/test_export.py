"""Telemetry JSONL writing and strict reading."""

import json

import pytest

from repro.obs.export import (TELEMETRY_SCHEMA, TelemetryFormatError,
                              read_jsonl, write_jsonl, write_merged_jsonl)

EVENTS = [
    {"kind": "probe_round", "seq": 1, "t": 0.0, "region": "FRA"},
    {"kind": "failover", "seq": 2, "t": 31.0, "stream": 4},
]
METRICS = {"probing.bursts": {"kind": "counter", "value": 120.0}}


class TestRoundTrip:
    def test_single_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(path, EVENTS, metrics=METRICS, meta={"command": "run"})
        doc = read_jsonl(path)
        assert doc.header["schema"] == TELEMETRY_SCHEMA
        assert doc.header["command"] == "run"
        assert doc.kinds() == {"probe_round": 1, "failover": 1}
        assert doc.events_of("failover")[0]["stream"] == 4
        (metrics_rec,) = doc.metrics
        assert metrics_rec["metrics"] == METRICS

    def test_no_metrics_record_when_none(self, tmp_path):
        path = write_jsonl(tmp_path / "run.jsonl", EVENTS)
        assert read_jsonl(path).metrics == []

    def test_merged_suite_tags_records_with_exp(self, tmp_path):
        path = tmp_path / "suite.jsonl"
        runs = [
            {"exp": "fig20", "events": EVENTS[:1], "metrics": METRICS},
            {"exp": "fig16", "events": EVENTS[1:], "metrics": {}},
        ]
        write_merged_jsonl(path, runs, meta={"suite": "quick"})
        doc = read_jsonl(path)
        assert doc.header["suite"] == "quick"
        assert [e["exp"] for e in doc.events] == ["fig20", "fig16"]
        assert [m["exp"] for m in doc.metrics] == ["fig20", "fig16"]

    def test_creates_parent_directories(self, tmp_path):
        path = write_jsonl(tmp_path / "deep" / "run.jsonl", [])
        assert path.exists()


class TestStrictReader:
    def _lines(self, tmp_path, *lines):
        path = tmp_path / "bad.jsonl"
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_empty_file_rejected(self, tmp_path):
        path = self._lines(tmp_path)
        with pytest.raises(TelemetryFormatError, match="empty"):
            read_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = self._lines(
            tmp_path, json.dumps({"record": "event", "kind": "x"}))
        with pytest.raises(TelemetryFormatError, match="header"):
            read_jsonl(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = self._lines(
            tmp_path, json.dumps({"record": "header", "schema": 999}))
        with pytest.raises(TelemetryFormatError, match="schema"):
            read_jsonl(path)

    def test_duplicate_header_rejected(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header, header)
        with pytest.raises(TelemetryFormatError, match="duplicate"):
            read_jsonl(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = self._lines(tmp_path, "{not json")
        with pytest.raises(TelemetryFormatError, match="invalid JSON"):
            read_jsonl(path)

    def test_event_without_kind_rejected(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header,
                           json.dumps({"record": "event"}))
        with pytest.raises(TelemetryFormatError, match="kind"):
            read_jsonl(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header,
                           json.dumps({"record": "mystery"}))
        with pytest.raises(TelemetryFormatError, match="unknown"):
            read_jsonl(path)

    def test_blank_lines_tolerated(self, tmp_path):
        header = json.dumps({"record": "header",
                             "schema": TELEMETRY_SCHEMA})
        path = self._lines(tmp_path, header, "",
                           json.dumps({"record": "event", "kind": "x"}))
        assert len(read_jsonl(path).events) == 1
