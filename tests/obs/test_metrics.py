"""Metric primitive and registry semantics."""

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, NULL_COUNTER, NULL_GAUGE,
                               NULL_HISTOGRAM, Counter, Gauge, Histogram,
                               HotCounters, MetricsRegistry)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(3)
        assert c.snapshot() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("x")
        g.set(10.0)
        g.add(-2.5)
        assert g.value == 7.5

    def test_snapshot(self):
        g = Gauge("x")
        g.set(1.5)
        assert g.snapshot() == {"kind": "gauge", "value": 1.5}


class TestHistogram:
    def test_requires_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=())

    def test_observe_fills_buckets_and_stats(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.total == 3
        assert h.sum == pytest.approx(55.5)
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(50.0)
        assert h.mean == pytest.approx(55.5 / 3)

    def test_snapshot_has_cumulative_buckets(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["kind"] == "histogram"
        assert snap["count"] == 4
        # Cumulative [bound, count-at-or-below] pairs + overflow.
        assert snap["buckets"] == [[1.0, 2], [10.0, 3]]
        assert snap["overflow"] == 1

    def test_quantile_bucket_resolution(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for v in (0.5,) * 50 + (1.5,) * 40 + (3.0,) * 10:
            h.observe(v)
        assert h.quantile(0.5) <= 1.0
        assert h.quantile(0.99) <= 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram(self):
        h = Histogram("x", buckets=(1.0,))
        assert h.total == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.histogram("h", buckets=DEFAULT_BUCKETS).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {}


class TestHotCounters:
    """The generation-aware handle cache used inside hot loops."""

    def test_fetch_resolves_once_per_generation(self):
        reg = MetricsRegistry()
        hot = HotCounters("a", "b")
        first = hot.fetch(reg)
        assert first == (reg.counter("a"), reg.counter("b"))
        assert hot.fetch(reg) is first  # cached tuple, no re-resolve
        first[0].inc(2)
        assert reg.counter("a").value == 2

    def test_reset_invalidates_the_cache(self):
        reg = MetricsRegistry()
        hot = HotCounters("a")
        (stale,) = hot.fetch(reg)
        stale.inc(5)
        reg.reset()
        (fresh,) = hot.fetch(reg)
        assert fresh is not stale
        fresh.inc(1)
        # The stale handle is orphaned: it no longer reaches the
        # registry, so the pre-reset count cannot leak into it.
        assert reg.counter("a").value == 1

    def test_survives_repeated_reset_enable_cycles(self):
        """The orchestrator's per-experiment pattern: capture() resets
        the registry between runs; each window must start from zero and
        end with exactly its own increments."""
        reg = MetricsRegistry()
        hot = HotCounters("loop.iterations")
        for cycle in range(3):
            reg.reset()
            for __ in range(cycle + 1):
                (c,) = hot.fetch(reg)
                c.inc()
            assert reg.counter("loop.iterations").value == cycle + 1

    def test_cache_shared_across_registries_by_generation_only(self):
        # Two registries can disagree on generation; the cache keys on
        # the number, so hand a HotCounters to ONE registry for life.
        reg = MetricsRegistry()
        hot = HotCounters("a")
        hot.fetch(reg)
        reg.reset()
        reg.counter("a").inc(3)
        (handle,) = hot.fetch(reg)
        assert handle.value == 3

    def test_hub_hot_counters_respect_capture_windows(self):
        """End to end through the facade: a HotCounters cached between
        two capture() windows must not carry counts across."""
        from repro import obs

        hot = HotCounters("hot.ticks")
        with obs.capture() as first:
            hot.fetch(first.metrics)[0].inc(7)
            assert first.metrics.counter("hot.ticks").value == 7
        with obs.capture() as second:
            hot.fetch(second.metrics)[0].inc(1)
            assert second.metrics.counter("hot.ticks").value == 1
        obs.disable()
        obs.reset()


class TestNullMetrics:
    """The disabled-telemetry fast path: all writes are no-ops."""

    def test_null_counter_ignores_inc(self):
        NULL_COUNTER.inc(100)
        assert NULL_COUNTER.value == 0

    def test_null_gauge_ignores_set(self):
        NULL_GAUGE.set(5.0)
        NULL_GAUGE.add(1.0)
        assert NULL_GAUGE.value == 0.0

    def test_null_histogram_ignores_observe(self):
        NULL_HISTOGRAM.observe(3.0)
        assert NULL_HISTOGRAM.total == 0
