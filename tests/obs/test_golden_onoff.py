"""Golden equivalence: full observability on vs off, byte for byte.

The acceptance bar for the observability layer is that arming ALL of it
— telemetry hub, live JSONL stream, SLO engine — leaves the simulation
output *byte-identical* to a run with everything off, including under
an active fault schedule.  Each test serializes the run's complete
observable output to canonical JSON and compares the bytes.
"""

import json
from dataclasses import replace

import pytest

from repro import obs
from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.simulator import EpochSimulator
from repro.core.variants import xron
from repro.faults import (FaultSchedule, controller_outage, gateway_crash,
                          probe_blackout)
from repro.obs.slo import SLOEngine, SLOTarget
from repro.traffic.demand import DemandModel
from repro.underlay.config import UnderlayConfig
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.scenarios import quiet_link
from repro.underlay.topology import build_underlay


@pytest.fixture(autouse=True)
def clean_hub():
    obs.disable()
    obs.reset()
    yield
    hub = obs.telemetry()
    if hub.stream is not None:
        hub.detach_stream(close=True)
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


def _build(regions, seed=5):
    config = UnderlayConfig(horizon_s=7200.0)
    config.internet.base_loss_min = 1e-6
    config.internet.base_loss_max = 1e-5
    config.internet.diurnal_loss_amp = 0.0
    for tier in (config.internet, config.premium):
        tier.short_events_per_day = 0.0
        tier.long_events_per_day = 0.0
    u = build_underlay(regions, config, seed=seed)
    for (a, b) in u.pairs:
        for lt in (LinkType.INTERNET, LinkType.PREMIUM):
            quiet_link(u, a, b, lt)
    return u, DemandModel(regions, seed=seed)


_FAULTS = (controller_outage(3640.0, 3700.0),
           gateway_crash(3620.0, 40.0, region="SIN", count=2),
           probe_blackout(3610.0, 30.0, region="HGH"))


def _golden_eventsim(regions, armed, tmp_path, faults):
    """One event-driven run; returns canonical bytes of its output."""
    obs.reset()
    if armed:
        hub = obs.enable()
        hub.attach_stream(tmp_path / "run.jsonl", max_bytes=64 * 1024)
        engine = SLOEngine(SLOTarget(min_samples=2), hub=hub)
    else:
        obs.disable()
        engine = None
    u, d = _build(regions)
    sim = EventDrivenXRON(
        u, d,
        # Elasticity off pins the fleets so the injected gateway crash
        # has victims to take (mirrors tests/faults).
        variant=replace(xron(), elastic=False),
        sim_config=SimulationConfig(epoch_s=30.0, eval_step_s=10.0,
                                    seed=5, demand_scale=0.05),
        faults=FaultSchedule.of(*faults) if faults else None,
        slo=engine)
    result = sim.run(3600.0, 120.0)
    if armed:
        engine.close()
        hub.detach_stream(close=True)
    doc = {"events": result.events_processed,
           "probe_bytes": result.probe_bytes,
           "epochs": len(result.control_outputs),
           "gateways": dict(result.gateway_counts),
           "fault_counters": result.fault_counters,
           "sessions": {
               f"{pair[0]}->{pair[1]}": [list(rec.times),
                                         list(rec.latency_ms),
                                         list(rec.loss_rate),
                                         list(rec.on_backup)]
               for pair, rec in sorted(result.sessions.items())}}
    return json.dumps(doc, sort_keys=True).encode()


def _golden_epochsim(regions, armed, tmp_path):
    obs.reset()
    if armed:
        hub = obs.enable()
        hub.attach_stream(tmp_path / "epoch.jsonl", max_bytes=64 * 1024)
        engine = SLOEngine(SLOTarget(min_samples=2), hub=hub)
    else:
        obs.disable()
        engine = None
    u, d = _build(regions)
    sim = EpochSimulator(
        u, d, xron(),
        sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=10.0,
                                    seed=5),
        slo=engine)
    result = sim.run(3600.0, 900.0)
    if armed:
        engine.close()
        hub.detach_stream(close=True)
    doc = {"latency": result.latency_ms.round(9).tolist(),
           "loss": result.loss_rate.round(9).tolist(),
           "on_backup": result.on_backup.astype(int).tolist(),
           "containers": result.containers.tolist(),
           "demand": result.demand_mbps.round(9).tolist()}
    return json.dumps(doc, sort_keys=True).encode()


class TestEventSim:
    def test_byte_identical_without_faults(self, regions, tmp_path):
        off = _golden_eventsim(regions, False, tmp_path / "off", None)
        on = _golden_eventsim(regions, True, tmp_path / "on", None)
        assert off == on

    def test_byte_identical_under_fault_schedule(self, regions, tmp_path):
        off = _golden_eventsim(regions, False, tmp_path / "off", _FAULTS)
        on = _golden_eventsim(regions, True, tmp_path / "on", _FAULTS)
        assert off == on

    def test_armed_fault_run_actually_streamed(self, regions, tmp_path):
        from repro.obs.export import read_many

        _golden_eventsim(regions, True, tmp_path, _FAULTS)
        parts = sorted(tmp_path.glob("run.*.jsonl"))
        assert parts
        doc = read_many(parts)
        kinds = set(doc.kinds())
        assert "fault_controller_outage" in kinds
        assert "fault_gateway_crash" in kinds
        assert doc.metrics, "stream carries no metric deltas"


class TestEpochSim:
    def test_byte_identical_with_slo_and_stream(self, regions, tmp_path):
        off = _golden_epochsim(regions, False, tmp_path / "off")
        on = _golden_epochsim(regions, True, tmp_path / "on")
        assert off == on
