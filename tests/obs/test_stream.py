"""Streaming JSONL exporter: rotation, deltas, crash tolerance."""

import json

import pytest

from repro import obs
from repro.obs.export import TelemetryFormatError, read_jsonl, read_many
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import TelemetryStream
from repro.obs.summary import summarize
from repro.obs.trace import TraceEvent, Tracer


@pytest.fixture(autouse=True)
def clean_hub():
    obs.disable()
    obs.reset()
    yield
    hub = obs.telemetry()
    if hub.stream is not None:
        hub.detach_stream(close=True)
    obs.disable()
    obs.reset()


def _event(seq, kind="probe_round", t=None, **fields):
    return TraceEvent(kind, t, seq, fields)


class TestParts:
    def test_each_part_carries_its_own_header(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=1024)
        stream.write_event(_event(1, t=1.0))
        stream.close()
        (path,) = stream.paths
        assert path.name == "run.00000.jsonl"
        header = json.loads(path.read_text().splitlines()[0])
        assert header["record"] == "header"
        assert header["stream"] == "run"
        assert header["part"] == 0

    def test_meta_lands_in_every_header(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=1024,
                                 meta={"command": "demo"})
        big = "x" * 600
        for i in range(6):
            stream.write_event(_event(i + 1, payload=big))
        stream.close()
        assert len(stream.paths) >= 2
        for path in stream.paths:
            header = json.loads(path.read_text().splitlines()[0])
            assert header["command"] == "demo"

    def test_rotation_respects_max_bytes(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=2048)
        for i in range(100):
            stream.write_event(_event(i + 1, t=float(i), payload="y" * 40))
        stream.close()
        assert stream.rotations >= 1
        assert len(stream.paths) == stream.rotations + 1
        for path in stream.paths:
            assert path.stat().st_size <= 2048

    def test_parts_sort_lexicographically_in_emission_order(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=1100)
        for i in range(40):
            stream.write_event(_event(i + 1, payload="z" * 60))
        stream.close()
        assert [p.name for p in stream.paths] == \
            sorted(p.name for p in stream.paths)
        seqs = []
        for path in sorted(tmp_path.glob("run.*.jsonl")):
            doc = read_jsonl(path)
            seqs.extend(e["seq"] for e in doc.events)
        assert seqs == sorted(seqs) == list(range(1, 41))

    def test_oversized_record_lands_instead_of_rotating_forever(
            self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=1024)
        stream.write_event(_event(1, payload="w" * 5000))
        stream.write_event(_event(2, payload="w" * 5000))
        stream.close()
        # Each oversized record gets its own part; none is lost.
        assert len(stream.paths) == 2
        total = sum(len(read_jsonl(p).events) for p in stream.paths)
        assert total == 2

    def test_read_many_merges_rotated_parts(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=1100)
        for i in range(30):
            stream.write_event(_event(i + 1, payload="q" * 60))
        stream.close()
        assert len(stream.paths) >= 2
        doc = read_many(stream.paths)
        assert len(doc.events) == 30
        assert doc.header["files"] == len(stream.paths)

    def test_rejects_tiny_rotation_budget(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryStream(tmp_path / "run.jsonl", max_bytes=100)

    def test_write_after_close_is_noop(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=1024)
        stream.close()
        stream.write_event(_event(1))
        stream.close()  # idempotent
        assert stream.events_written == 0


class TestCrashSafety:
    def test_truncated_tail_readable_with_allow_partial(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=65536)
        for i in range(5):
            stream.write_event(_event(i + 1, t=float(i)))
        stream.close()
        (path,) = stream.paths
        # Simulate a crash mid-write: chop the final line in half.
        text = path.read_text()
        path.write_text(text[:len(text) - 20])
        with pytest.raises(TelemetryFormatError):
            read_jsonl(path)
        doc = read_jsonl(path, allow_partial_tail=True)
        assert len(doc.events) == 4


class TestDeltaMetrics:
    def test_counter_deltas_rebuild_the_total(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=65536)
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        assert stream.flush_metrics(reg) is True
        reg.counter("c").inc(4)
        assert stream.flush_metrics(reg) is True
        stream.close()
        doc = read_jsonl(stream.paths[0])
        assert [m["metrics"]["c"]["value"] for m in doc.metrics] == [3, 4]
        assert all(m["delta"] for m in doc.metrics)
        assert summarize(doc).metrics["c"]["value"] == 7

    def test_unchanged_registry_writes_nothing(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=65536)
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert stream.flush_metrics(reg) is True
        assert stream.flush_metrics(reg) is False
        assert stream.metrics_flushes == 1
        stream.close()

    def test_gauge_delta_is_last_write_wins(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=65536)
        reg = MetricsRegistry()
        reg.gauge("g").set(5.0)
        stream.flush_metrics(reg)
        reg.gauge("g").set(2.0)
        stream.flush_metrics(reg)
        stream.close()
        doc = read_jsonl(stream.paths[0])
        assert summarize(doc).metrics["g"]["value"] == 2.0

    def test_histogram_bucket_deltas_rebuild_cumulative(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=65536)
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0, 100.0))
        h.observe(0.5)
        h.observe(5.0)
        stream.flush_metrics(reg)
        h.observe(50.0)
        h.observe(500.0)  # overflow
        stream.flush_metrics(reg)
        stream.close()
        merged = summarize(read_jsonl(stream.paths[0])).metrics["h"]
        assert merged["count"] == 4
        assert merged["overflow"] == 1
        assert merged["buckets"] == h.snapshot()["buckets"]
        assert merged["max"] == 500.0

    def test_registry_reset_resets_the_baseline(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=65536)
        reg = MetricsRegistry()
        reg.counter("c").inc(10)
        stream.flush_metrics(reg)
        reg.reset()  # generation bump: new capture window
        reg.counter("c").inc(2)
        stream.flush_metrics(reg)
        stream.close()
        doc = read_jsonl(stream.paths[0])
        # Never a negative delta: 10 then 2, not 10 then -8.
        assert [m["metrics"]["c"]["value"] for m in doc.metrics] == [10, 2]

    def test_flush_stamps_sim_time(self, tmp_path):
        stream = TelemetryStream(tmp_path / "run.jsonl", max_bytes=65536)
        reg = MetricsRegistry()
        reg.counter("c").inc()
        stream.flush_metrics(reg, t=123.456)
        stream.close()
        doc = read_jsonl(stream.paths[0])
        assert doc.metrics[0]["t"] == 123.456


class TestHubIntegration:
    def test_attached_stream_sees_every_event(self, tmp_path):
        hub = obs.enable()
        stream = hub.attach_stream(tmp_path / "live.jsonl")
        hub.event("failover", t=1.0, stream=7)
        hub.counter("c").inc()
        hub.flush_stream(t=2.0)
        hub.detach_stream(close=True)
        doc = read_jsonl(stream.paths[0])
        assert doc.events[0]["kind"] == "failover"
        assert doc.metrics[0]["metrics"]["c"]["value"] == 1

    def test_second_attach_rejected(self, tmp_path):
        hub = obs.enable()
        hub.attach_stream(tmp_path / "a.jsonl")
        with pytest.raises(RuntimeError):
            hub.attach_stream(tmp_path / "b.jsonl")
        hub.detach_stream(close=True)

    def test_stream_keeps_events_past_the_tracer_bound(self, tmp_path):
        tracer = Tracer(max_events=3)
        stream = TelemetryStream(tmp_path / "b.jsonl", max_bytes=65536)
        tracer.add_sink(stream.write_event)
        for i in range(10):
            tracer.record("probe_round", i=i)
        stream.close()
        assert len(tracer) == 3 and tracer.dropped == 7
        # The stream holds the complete record.
        assert len(read_jsonl(stream.paths[0]).events) == 10

    def test_capture_isolates_the_ambient_stream(self, tmp_path):
        hub = obs.enable()
        ambient = hub.attach_stream(tmp_path / "outer.jsonl")
        hub.event("failover", t=1.0)
        with obs.capture() as inner:
            inner.event("autoscale", t=2.0)  # must NOT hit `ambient`
        assert hub.stream is ambient  # re-attached on exit
        hub.event("failback", t=3.0)
        hub.detach_stream(close=True)
        kinds = [e["kind"] for e in read_jsonl(ambient.paths[0]).events]
        assert kinds == ["failover", "failback"]

    def test_stream_attached_inside_capture_is_finalized(self, tmp_path):
        with obs.capture() as hub:
            stream = hub.attach_stream(tmp_path / "inner.jsonl")
            hub.event("failover", t=1.0)
            hub.counter("c").inc(2)
        assert stream.closed
        assert obs.telemetry().stream is None
        doc = read_jsonl(stream.paths[0])
        assert doc.events[0]["kind"] == "failover"
        assert doc.metrics[0]["metrics"]["c"]["value"] == 2
