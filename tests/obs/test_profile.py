"""Phase profiler: span folding, self time, coverage, attribution."""

import pytest

from repro.obs.profile import PARENT_OF, profile_events, render


def _step(step, ms, t=0.0):
    return {"kind": "algo_step", "seq": 1, "t": t, "step": step,
            "duration_ms": ms}


def _epoch(ms, t=0.0, top_pairs=None):
    doc = {"kind": "control_epoch", "seq": 2, "t": t, "duration_ms": ms}
    if top_pairs is not None:
        doc["top_pairs"] = top_pairs
    return doc


class TestFolding:
    def test_totals_counts_and_means_across_epochs(self):
        events = [_step("predict", 10.0), _epoch(30.0),
                  _step("predict", 20.0), _epoch(40.0)]
        profile = profile_events(events)
        assert profile.epochs == 2
        assert profile.epoch_wall_ms == 70.0
        (phase,) = profile.phases
        assert phase.step == "predict"
        assert phase.count == 2
        assert phase.total_ms == 30.0
        assert phase.mean_ms == 15.0

    def test_child_time_subtracts_from_parent_self(self):
        assert PARENT_OF["snapshot_build"] == "link_snapshot"
        events = [_step("snapshot_build", 8.0),
                  _step("link_snapshot", 10.0), _epoch(12.0)]
        profile = profile_events(events)
        by_step = {p.step: p for p in profile.phases}
        assert by_step["link_snapshot"].total_ms == 10.0
        assert by_step["link_snapshot"].self_ms == 2.0
        assert by_step["snapshot_build"].parent == "link_snapshot"
        # Top-level sum counts children once, via their parents.
        assert profile.phase_total_ms == 10.0

    def test_self_time_clamps_at_zero(self):
        # A child recorded outside its parent's span (the underlay
        # builders emit snapshot_build from the data-plane path too)
        # can out-total the parent; self time must not go negative.
        events = [_step("snapshot_build", 50.0),
                  _step("link_snapshot", 10.0), _epoch(12.0)]
        by_step = {p.step: p for p in profile_events(events).phases}
        assert by_step["link_snapshot"].self_ms == 0.0

    def test_coverage_against_epoch_wall(self):
        events = [_step("predict", 30.0), _step("algo1.path_control", 50.0),
                  _epoch(100.0)]
        profile = profile_events(events)
        assert profile.phase_total_ms == 80.0
        assert profile.coverage == pytest.approx(0.8)

    def test_empty_events_give_empty_profile(self):
        profile = profile_events([])
        assert profile.phases == []
        assert profile.epochs == 0
        assert profile.coverage == 0.0

    def test_non_span_events_ignored(self):
        events = [{"kind": "failover", "seq": 1, "t": 0.0},
                  _step("predict", 5.0), _epoch(6.0)]
        assert len(profile_events(events).phases) == 1


class TestPairAttribution:
    def test_algo1_time_apportioned_by_demand_share(self):
        events = [_step("algo1.path_control", 100.0),
                  _epoch(120.0, top_pairs=[["FRA", "SIN", 75.0],
                                           ["SIN", "HGH", 25.0]])]
        profile = profile_events(events)
        assert profile.pair_share_ms[("FRA", "SIN")] == pytest.approx(75.0)
        assert profile.pair_share_ms[("SIN", "HGH")] == pytest.approx(25.0)
        assert sum(profile.pair_share_ms.values()) == pytest.approx(100.0)

    def test_pairs_accumulate_across_epochs(self):
        events = [_step("algo1.path_control", 10.0),
                  _epoch(12.0, top_pairs=[["FRA", "SIN", 10.0]]),
                  _step("algo1.path_control", 30.0),
                  _epoch(32.0, top_pairs=[["FRA", "SIN", 10.0],
                                          ["SIN", "HGH", 10.0]])]
        profile = profile_events(events)
        assert sum(profile.pair_share_ms.values()) == pytest.approx(40.0)
        assert profile.pair_share_ms[("FRA", "SIN")] > \
            profile.pair_share_ms[("SIN", "HGH")]

    def test_no_top_pairs_no_attribution(self):
        events = [_step("algo1.path_control", 10.0), _epoch(12.0)]
        assert profile_events(events).pair_share_ms == {}


class TestRender:
    def test_table_lists_phases_and_coverage(self):
        events = [_step("predict", 30.0), _step("algo1.path_control", 50.0),
                  _epoch(100.0, top_pairs=[["FRA", "SIN", 10.0]])]
        text = "\n".join(render(profile_events(events)))
        assert "predict" in text
        assert "algo1.path_control" in text
        assert "(phases, top level)" in text
        assert "80.0%" in text
        assert "FRA->SIN" in text

    def test_child_phase_indented_under_parent(self):
        events = [_step("snapshot_build", 4.0),
                  _step("link_snapshot", 10.0), _epoch(12.0)]
        lines = render(profile_events(events))
        (child_line,) = [ln for ln in lines if "snapshot_build" in ln]
        assert child_line.startswith("  ")

    def test_max_pairs_cap_reported(self):
        pairs = [[f"R{i:02d}", "SIN", 1.0] for i in range(12)]
        events = [_step("algo1.path_control", 12.0),
                  _epoch(14.0, top_pairs=pairs)]
        text = "\n".join(render(profile_events(events), max_pairs=10))
        assert "2 more pairs" in text


class TestControlModePhases:
    """The sharded/incremental sub-spans nest under the algorithm spans
    so the phase sum keeps covering the epoch wall exactly once."""

    def test_parent_map_entries(self):
        assert PARENT_OF["incremental.diff"] == "algo1.path_control"
        assert PARENT_OF["sharded.walks"] == "algo2.reaction_plans"

    def test_incremental_diff_subtracts_from_path_control(self):
        events = [_step("incremental.diff", 3.0),
                  _step("algo1.path_control", 10.0), _epoch(12.0)]
        by_step = {p.step: p for p in profile_events(events).phases}
        assert by_step["incremental.diff"].parent == "algo1.path_control"
        assert by_step["algo1.path_control"].self_ms == 7.0
        # Counted once at top level, via the parent.
        assert profile_events(events).phase_total_ms == 10.0

    def test_sharded_walks_subtract_from_reaction_plans(self):
        events = [_step("sharded.walks", 4.0),
                  _step("algo2.reaction_plans", 9.0), _epoch(11.0)]
        profile = profile_events(events)
        by_step = {p.step: p for p in profile.phases}
        assert by_step["sharded.walks"].parent == "algo2.reaction_plans"
        assert by_step["algo2.reaction_plans"].self_ms == 5.0
        assert profile.phase_total_ms == 9.0
