"""Per-stream SLO engine: burn rates, hysteresis, causal annotation."""

import pytest

from repro import obs
from repro.obs.slo import SLOEngine, SLOTarget
from repro.qoe.metrics import qoe_badness


@pytest.fixture(autouse=True)
def clean_hub():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


#: Quick-breach target: 10s window, any bad sample in the window burns
#: 10x budget, recovery at half-burn, two samples arm the window.
TARGET = SLOTarget(latency_ms=400.0, loss_rate=0.05, window_s=10.0,
                   error_budget=0.5, breach_burn=1.0, recover_burn=0.4,
                   min_samples=2)


def _engine(**kwargs):
    return SLOEngine(TARGET, **kwargs)


class TestTargetValidation:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SLOTarget(window_s=0.0)

    def test_rejects_bad_error_budget(self):
        with pytest.raises(ValueError):
            SLOTarget(error_budget=0.0)
        with pytest.raises(ValueError):
            SLOTarget(error_budget=1.5)

    def test_rejects_inverted_hysteresis(self):
        with pytest.raises(ValueError):
            SLOTarget(breach_burn=1.0, recover_burn=1.0)

    def test_rejects_zero_min_samples(self):
        with pytest.raises(ValueError):
            SLOTarget(min_samples=0)


class TestBurnAndHysteresis:
    def test_breach_after_min_samples_only(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        engine.observe("a->b", 0.0, 9000.0, 0.0)  # bad, but 1 sample
        assert not engine.streams["a->b"].in_breach
        engine.observe("a->b", 1.0, 9000.0, 0.0)
        assert engine.streams["a->b"].in_breach
        (breach,) = hub.tracer.by_kind("slo_breach")
        assert breach.fields["stream"] == "a->b"
        assert breach.fields["burn_rate"] == 2.0  # 100% bad / 0.5 budget
        engine.close()

    def test_good_samples_recover_with_hysteresis(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        for i in range(4):
            engine.observe("a->b", float(i), 9000.0, 0.0)
        assert engine.streams["a->b"].in_breach
        # Burn must fall to <= 0.4 * budget — bad samples age out of the
        # 10s window while good ones accumulate.
        t = 4.0
        while engine.streams["a->b"].in_breach:
            engine.observe("a->b", t, 10.0, 0.0)
            t += 1.0
            assert t < 60.0, "never recovered"
        (rec,) = hub.tracer.by_kind("slo_recovered")
        assert rec.fields["duration_s"] > 0
        ledger = engine.streams["a->b"]
        assert ledger.breaches == 1
        assert ledger.breach_seconds == pytest.approx(
            rec.fields["duration_s"])
        engine.close()

    def test_blackholed_samples_are_always_bad(self):
        engine = _engine()
        for i in range(3):
            engine.observe("a->b", float(i), blackholed=True)
        ledger = engine.streams["a->b"]
        assert ledger.in_breach
        assert ledger.blackhole_samples == 3
        assert ledger.bad_samples == 3
        engine.close()

    def test_custom_badness_predicate_wins(self):
        # Threshold says 100ms is fine; the predicate says otherwise.
        engine = _engine(badness=lambda lat, loss: lat > 50.0)
        engine.observe("a->b", 0.0, 100.0, 0.0)
        engine.observe("a->b", 1.0, 100.0, 0.0)
        assert engine.streams["a->b"].in_breach
        engine.close()

    def test_qoe_badness_classifier_plugs_in(self):
        engine = _engine(badness=qoe_badness())
        engine.observe("a->b", 0.0, 9000.0, 0.9)
        engine.observe("a->b", 1.0, 9000.0, 0.9)
        assert engine.streams["a->b"].bad_samples == 2
        engine.observe("c->d", 0.0, 50.0, 0.0)
        assert engine.streams["c->d"].bad_samples == 0
        engine.close()

    def test_observe_series_bulk_path(self):
        engine = _engine()
        engine.observe_series("a->b", [0.0, 1.0, 2.0],
                              [10.0, 9000.0, 10.0], [0.0, 0.0, 0.0])
        ledger = engine.streams["a->b"]
        assert ledger.samples == 3 and ledger.bad_samples == 1
        engine.close()


class TestCausalAnnotation:
    def test_breach_names_the_nearest_fault(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        hub.event("fault_probe_blackout", t=5.0, region="SIN", fault_id=3)
        engine.observe("a->b", 6.0, 9000.0, 0.0)
        engine.observe("a->b", 7.0, 9000.0, 0.0)
        (breach,) = hub.tracer.by_kind("slo_breach")
        assert breach.fields["cause_kind"] == "fault_probe_blackout"
        assert breach.fields["cause_t"] == 5.0
        assert breach.fields["cause_fault_id"] == 3
        assert breach.fields["cause_region"] == "SIN"
        engine.close()

    def test_fault_ids_list_feeds_the_annotation(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        hub.event("fault_probe_blackout", t=5.0, fault_ids=[2, 4])
        engine.observe("a->b", 6.0, 9000.0, 0.0)
        engine.observe("a->b", 7.0, 9000.0, 0.0)
        (breach,) = hub.tracer.by_kind("slo_breach")
        assert breach.fields["cause_fault_id"] == 2
        engine.close()

    def test_stale_faults_outside_the_window_are_not_blamed(self):
        hub = obs.enable()
        engine = _engine(hub=hub, cause_window_s=30.0)
        hub.event("fault_gateway_crash", t=5.0, fault_id=1)
        engine.observe("a->b", 100.0, 9000.0, 0.0)
        engine.observe("a->b", 101.0, 9000.0, 0.0)
        (breach,) = hub.tracer.by_kind("slo_breach")
        assert "cause_kind" not in breach.fields
        engine.close()

    def test_future_faults_are_never_blamed(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        hub.event("fault_gateway_crash", t=50.0, fault_id=1)
        engine.observe("a->b", 6.0, 9000.0, 0.0)
        engine.observe("a->b", 7.0, 9000.0, 0.0)
        (breach,) = hub.tracer.by_kind("slo_breach")
        assert "cause_kind" not in breach.fields
        engine.close()

    def test_recovery_names_the_nearest_remedy(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        for i in range(4):
            engine.observe("a->b", float(i), 9000.0, 0.0)
        hub.event("failover", t=4.5, stream=1)
        t = 5.0
        while engine.streams["a->b"].in_breach:
            engine.observe("a->b", t, 10.0, 0.0)
            t += 1.0
        (rec,) = hub.tracer.by_kind("slo_recovered")
        assert rec.fields["remedy_kind"] == "failover"
        assert rec.fields["remedy_t"] == 4.5
        engine.close()

    def test_own_slo_events_are_not_remembered_as_causes(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        for i in range(4):
            engine.observe("a->b", float(i), 9000.0, 0.0)
        assert hub.tracer.by_kind("slo_breach")
        assert not engine._causes  # the sink ignores slo_* events
        engine.close()


class TestPassivity:
    def test_disabled_hub_keeps_ledgers_but_emits_nothing(self):
        hub = obs.telemetry()
        assert not hub.enabled
        engine = _engine(hub=hub)
        for i in range(4):
            engine.observe("a->b", float(i), 9000.0, 0.0)
        assert engine.streams["a->b"].in_breach  # accounting still runs
        assert len(hub.tracer) == 0              # but no events/metrics
        assert "slo.breaches" not in hub.metrics
        engine.close()

    def test_metrics_emitted_while_enabled(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        for i in range(4):
            engine.observe("a->b", float(i), 9000.0, 0.0)
        t = 4.0
        while engine.streams["a->b"].in_breach:
            engine.observe("a->b", t, 10.0, 0.0)
            t += 1.0
        snap = hub.metrics.snapshot()
        assert snap["slo.breaches"]["value"] == 1
        assert snap["slo.recoveries"]["value"] == 1
        assert snap["slo.streams_in_breach"]["value"] == 0
        assert snap["slo.breach_duration_s"]["count"] == 1
        engine.close()

    def test_close_is_idempotent_and_unhooks(self):
        hub = obs.enable()
        engine = _engine(hub=hub)
        engine.close()
        engine.close()
        hub.event("fault_gateway_crash", t=1.0)
        assert not engine._causes


class TestReport:
    def test_report_keys_sorted_and_json_ready(self):
        import json

        engine = _engine()
        engine.observe("b->c", 0.0, 10.0, 0.0)
        engine.observe("a->b", 0.0, 9000.0, 0.0)
        doc = engine.report()
        assert list(doc) == ["a->b", "b->c"]
        json.dumps(doc)
        assert doc["a->b"]["bad_samples"] == 1
        engine.close()

    def test_render_mentions_breach_state(self):
        engine = _engine()
        for i in range(4):
            engine.observe("a->b", float(i), 9000.0, 0.0)
        text = "\n".join(engine.render_report())
        assert "a->b" in text and "IN BREACH" in text
        engine.close()

    def test_render_empty_engine(self):
        engine = _engine()
        assert "(no streams observed)" in "\n".join(engine.render_report())
        engine.close()
