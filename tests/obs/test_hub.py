"""The process-wide telemetry hub: enable/disable/capture semantics."""

import pytest

from repro import obs
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM


@pytest.fixture(autouse=True)
def clean_hub():
    """Every test starts and ends with a disabled, empty hub."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDisabled:
    def test_disabled_hands_out_null_metrics(self):
        tel = obs.telemetry()
        assert tel.counter("x") is NULL_COUNTER
        assert tel.gauge("x") is NULL_GAUGE
        assert tel.histogram("x") is NULL_HISTOGRAM

    def test_disabled_writes_leave_no_state(self):
        tel = obs.telemetry()
        tel.counter("c").inc(10)
        tel.event("failover", t=1.0)
        with tel.span("algo_step"):
            pass
        assert tel.metrics.snapshot() == {}
        assert tel.events_json() == []


class TestEnabled:
    def test_enable_collects(self):
        tel = obs.enable()
        tel.counter("c").inc(2)
        tel.event("failover", t=1.0, stream=3)
        assert tel.metrics.snapshot()["c"]["value"] == 2
        assert tel.events_json()[0]["kind"] == "failover"

    def test_singleton_identity_is_stable(self):
        # Cached handles (module-level _TEL in instrumented modules)
        # must observe enable/disable because the hub mutates in place.
        cached = obs.telemetry()
        assert obs.enable() is cached
        assert cached.enabled
        assert obs.disable() is cached
        assert not cached.enabled

    def test_reset_keeps_flag(self):
        tel = obs.enable()
        tel.counter("c").inc()
        obs.reset()
        assert tel.enabled
        assert tel.metrics.snapshot() == {}


class TestCapture:
    def test_capture_yields_fresh_enabled_hub(self):
        tel = obs.enable()
        tel.counter("stale").inc()
        with obs.capture() as hub:
            assert hub is tel
            assert hub.enabled
            assert "stale" not in hub.metrics
            hub.counter("fresh").inc()
            snap = hub.metrics.snapshot()
        assert snap == {"fresh": {"kind": "counter", "value": 1.0}}

    def test_capture_restores_disabled_flag(self):
        obs.disable()
        with obs.capture() as hub:
            hub.counter("c").inc()
        assert not obs.telemetry().enabled
        # Collected data survives the block for harvesting.
        assert obs.telemetry().metrics.snapshot()["c"]["value"] == 1

    def test_capture_restores_flag_on_exception(self):
        obs.disable()
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert not obs.telemetry().enabled
