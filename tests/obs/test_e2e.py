"""End-to-end: real simulations emit the documented trace events.

Reuses the deterministic degradation recipe of
``tests/core/test_eventsim.py``: a quiet underlay plus one injected
Internet degradation on the busiest pair, so the local fast reaction
must fire — and therefore `failover` events must be traced.
"""

import pytest

from repro import obs
from repro.core.config import SimulationConfig
from repro.core.eventsim import EventDrivenXRON
from repro.core.simulator import EpochSimulator
from repro.core.variants import xron
from repro.traffic.demand import DemandModel
from repro.underlay.config import UnderlayConfig
from repro.underlay.events import DegradationEvent
from repro.underlay.linkstate import LinkType
from repro.underlay.regions import default_regions
from repro.underlay.scenarios import inject_events, quiet_link
from repro.underlay.topology import build_underlay


@pytest.fixture(autouse=True)
def clean_hub():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def regions():
    by_code = {r.code: r for r in default_regions()}
    return [by_code[c] for c in ("HGH", "SIN", "FRA")]


def _quiet_build(regions, seed=5):
    config = UnderlayConfig(horizon_s=7200.0)
    config.internet.base_loss_min = 1e-6
    config.internet.base_loss_max = 1e-5
    config.internet.diurnal_loss_amp = 0.0
    config.internet.short_events_per_day = 0.0
    config.internet.long_events_per_day = 0.0
    config.premium.short_events_per_day = 0.0
    config.premium.long_events_per_day = 0.0
    u = build_underlay(regions, config, seed=seed)
    for (a, b) in u.pairs:
        for lt in (LinkType.INTERNET, LinkType.PREMIUM):
            quiet_link(u, a, b, lt)
    return u, DemandModel(regions, seed=seed)


def test_eventsim_emits_probe_and_failover_traces(regions):
    u, d = _quiet_build(regions)
    pair = max(d.pairs, key=lambda p: d.pair_scale(*p))
    inject_events(u, pair[0], pair[1], LinkType.INTERNET,
                  [DegradationEvent(3630.0, 60.0, 5000.0, 0.3)])
    sim = EventDrivenXRON(
        u, d,
        sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=10.0,
                                    seed=5, demand_scale=0.05),
        tracked_pairs=[pair])

    tel = obs.enable()
    result = sim.run(3600.0, 120.0)

    assert result.detections >= 1  # the recipe still behaves
    kinds = set(tel.tracer.kinds())
    assert "probe_round" in kinds
    assert "failover" in kinds
    assert "control_epoch" in kinds
    assert "algo_step" in kinds
    assert "path_decision" in kinds

    failover = tel.tracer.by_kind("failover")[0]
    # Enum fields coerce to their value at JSON time.
    assert failover.to_json()["degraded_link"] == "internet"
    assert failover.fields["backup_next_hop"]
    assert failover.t is not None and failover.t >= 3600.0

    snap = tel.metrics.snapshot()
    assert snap["reaction.failovers"]["value"] >= 1
    assert snap["cluster.probe_rounds"]["value"] > 0
    assert snap["probing.bursts"]["value"] > 0
    assert snap["controller.epochs"]["value"] >= 1


def test_eventsim_outage_emits_controller_outage(regions):
    u, d = _quiet_build(regions)
    sim = EventDrivenXRON(
        u, d,
        sim_config=SimulationConfig(epoch_s=60.0, eval_step_s=10.0,
                                    seed=5),
        controller_outage=(3650.0, 3800.0))
    tel = obs.enable()
    sim.run(3600.0, 240.0)
    outages = tel.tracer.by_kind("controller_outage")
    assert outages
    assert outages[0].fields["outage_start"] == 3650.0


def test_epoch_simulator_emits_epoch_and_autoscale_traces(regions):
    u, d = _quiet_build(regions)
    sim = EpochSimulator(
        u, d, xron(),
        sim_config=SimulationConfig(epoch_s=300.0, eval_step_s=10.0,
                                    seed=5))
    tel = obs.enable()
    sim.run(3600.0, 900.0)
    kinds = set(tel.tracer.kinds())
    assert "probe_round" in kinds
    assert "control_epoch" in kinds
    assert "autoscale" in kinds
    assert tel.metrics.snapshot()["simulator.epochs"]["value"] == 3


def test_instrumentation_is_deterministic(regions):
    """Enabling telemetry must not change simulation results."""
    def run_once(enabled):
        obs.reset()
        (obs.enable if enabled else obs.disable)()
        u, d = _quiet_build(regions)
        sim = EventDrivenXRON(
            u, d,
            sim_config=SimulationConfig(epoch_s=60.0, eval_step_s=10.0,
                                        seed=5))
        result = sim.run(3600.0, 120.0)
        return [(pair, tuple(rec.latency_ms), tuple(rec.on_backup))
                for pair, rec in sorted(result.sessions.items())]

    assert run_once(False) == run_once(True)
