"""Summary aggregation and the ``repro obs`` CLI."""

from repro.cli import main as cli_main
from repro.obs.export import TELEMETRY_SCHEMA, TelemetryFile, write_jsonl
from repro.obs.summary import _estimate_quantile, render, summarize

HEADER = {"record": "header", "schema": TELEMETRY_SCHEMA, "suite": "quick"}


def _doc(events=(), metrics=()):
    return TelemetryFile(header=dict(HEADER), events=list(events),
                         metrics=list(metrics))


class TestSummarize:
    def test_counts_kinds_and_time_ranges(self):
        doc = _doc(events=[
            {"record": "event", "kind": "probe_round", "t": 10.0},
            {"record": "event", "kind": "probe_round", "t": 50.0},
            {"record": "event", "kind": "rep_election"},
        ])
        s = summarize(doc)
        assert s.total_events == 3
        assert s.kind_counts == {"probe_round": 2, "rep_election": 1}
        assert s.kind_time_range["probe_round"] == [10.0, 50.0]
        assert "rep_election" not in s.kind_time_range
        assert not s.empty

    def test_experiment_breakdown(self):
        doc = _doc(events=[
            {"record": "event", "kind": "failover", "exp": "fig16"},
            {"record": "event", "kind": "failover", "exp": "fig16"},
            {"record": "event", "kind": "autoscale", "exp": "fig20"},
        ])
        assert summarize(doc).exp_counts == {"fig16": 2, "fig20": 1}

    def test_counters_sum_across_records(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "a": {"kind": "counter", "value": 2.0}}},
            {"record": "metrics", "metrics": {
                "a": {"kind": "counter", "value": 3.0}}},
        ])
        assert summarize(doc).metrics["a"]["value"] == 5.0

    def test_gauges_last_write_wins(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "g": {"kind": "gauge", "value": 1.0}}},
            {"record": "metrics", "metrics": {
                "g": {"kind": "gauge", "value": 9.0}}},
        ])
        assert summarize(doc).metrics["g"]["value"] == 9.0

    def test_histograms_merge_count_and_sum(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "h": {"kind": "histogram", "count": 2, "sum": 4.0,
                      "min": 1.0, "max": 3.0}}},
            {"record": "metrics", "metrics": {
                "h": {"kind": "histogram", "count": 1, "sum": 5.0,
                      "min": 5.0, "max": 5.0}}},
        ])
        merged = summarize(doc).metrics["h"]
        assert merged["count"] == 3
        assert merged["sum"] == 9.0
        assert merged["max"] == 5.0

    def test_histograms_merge_buckets_and_overflow(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "h": {"kind": "histogram", "count": 3, "sum": 6.0,
                      "min": 0.5, "max": 5.0, "overflow": 1,
                      "buckets": [[1.0, 1], [4.0, 2]]}}},
            {"record": "metrics", "delta": True, "metrics": {
                "h": {"kind": "histogram", "count": 2, "sum": 2.0,
                      "min": 0.2, "max": 5.0, "overflow": 0,
                      "buckets": [[1.0, 2], [4.0, 2]]}}},
        ])
        merged = summarize(doc).metrics["h"]
        assert merged["count"] == 5
        assert merged["overflow"] == 1
        assert merged["buckets"] == [[1.0, 3], [4.0, 4]]
        assert merged["min"] == 0.2

    def test_histogram_min_max_ignore_empty_records(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "h": {"kind": "histogram", "count": 0, "sum": 0.0,
                      "min": 0.0, "max": 0.0}}},
            {"record": "metrics", "metrics": {
                "h": {"kind": "histogram", "count": 2, "sum": 14.0,
                      "min": 4.0, "max": 10.0}}},
        ])
        merged = summarize(doc).metrics["h"]
        # The empty first record's 0.0 min must not win.
        assert merged["min"] == 4.0
        assert merged["max"] == 10.0

    def test_empty_doc(self):
        assert summarize(_doc()).empty


class TestQuantileEstimates:
    SNAP = {"kind": "histogram", "count": 100, "sum": 0.0,
            "min": 0.1, "max": 42.0, "overflow": 2,
            "buckets": [[1.0, 50], [10.0, 90], [100.0, 98]]}

    def test_estimates_mirror_histogram_quantile(self):
        assert _estimate_quantile(self.SNAP, 0.5) == 1.0
        assert _estimate_quantile(self.SNAP, 0.9) == 10.0
        assert _estimate_quantile(self.SNAP, 0.95) == 100.0

    def test_overflow_rank_falls_back_to_observed_max(self):
        assert _estimate_quantile(self.SNAP, 0.999) == 42.0

    def test_no_buckets_no_estimate(self):
        assert _estimate_quantile({"kind": "histogram", "count": 5}, 0.5) \
            is None
        assert _estimate_quantile({"kind": "histogram", "count": 0,
                                   "buckets": [[1.0, 0]]}, 0.5) is None

    def test_render_shows_estimated_percentiles(self):
        doc = _doc(metrics=[{"record": "metrics",
                             "metrics": {"h": dict(self.SNAP)}}])
        text = "\n".join(render(summarize(doc)))
        assert "p50~1" in text
        assert "p95~100" in text
        assert "p99~42" in text  # rank 99 > last bucket: observed max

    def test_render_omits_percentiles_without_buckets(self):
        doc = _doc(metrics=[{"record": "metrics", "metrics": {
            "h": {"kind": "histogram", "count": 2, "sum": 4.0,
                  "min": 1.0, "max": 3.0}}}])
        text = "\n".join(render(summarize(doc)))
        assert "p50" not in text


class TestRender:
    def test_render_lists_kinds_by_count(self):
        doc = _doc(events=[
            {"record": "event", "kind": "probe_round", "t": 1.0},
            {"record": "event", "kind": "probe_round", "t": 2.0},
            {"record": "event", "kind": "failover", "t": 1.5},
        ], metrics=[{"record": "metrics", "metrics": {
            "c": {"kind": "counter", "value": 7.0}}}])
        text = "\n".join(render(summarize(doc)))
        assert "probe_round" in text
        assert "failover" in text
        assert text.index("probe_round") < text.index("failover")
        assert "c" in text and "counter" in text

    def test_metric_cap_is_reported(self):
        doc = _doc(metrics=[{"record": "metrics", "metrics": {
            f"m{i:02d}": {"kind": "counter", "value": 1.0}
            for i in range(5)}}])
        text = "\n".join(render(summarize(doc), max_metrics=2))
        assert "first 2 shown" in text
        assert "m04" not in text


class TestCli:
    def test_summary_renders_valid_file(self, tmp_path, capsys):
        path = write_jsonl(
            tmp_path / "t.jsonl",
            [{"kind": "failover", "seq": 1, "t": 3.0}],
            metrics={"c": {"kind": "counter", "value": 1.0}})
        assert cli_main(["obs", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "failover" in out

    def test_summary_rejects_missing_file(self, tmp_path, capsys):
        assert cli_main(["obs", "summary",
                         str(tmp_path / "absent.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_summary_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert cli_main(["obs", "summary", str(path)]) == 1

    def test_summary_rejects_empty_telemetry(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "empty.jsonl", [])
        assert cli_main(["obs", "summary", str(path)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_summary_merges_multiple_paths(self, tmp_path, capsys):
        a = write_jsonl(tmp_path / "a.jsonl",
                        [{"kind": "failover", "seq": 1, "t": 1.0}],
                        metrics={"c": {"kind": "counter", "value": 2.0}})
        b = write_jsonl(tmp_path / "b.jsonl",
                        [{"kind": "autoscale", "seq": 1, "t": 2.0}],
                        metrics={"c": {"kind": "counter", "value": 3.0}})
        assert cli_main(["obs", "summary", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "failover" in out and "autoscale" in out
        assert "(2 total)" in out
        assert "5" in out  # the counters summed across files

    def test_summary_expands_globs(self, tmp_path, capsys):
        for i in range(3):
            write_jsonl(tmp_path / f"part.{i:05d}.jsonl",
                        [{"kind": "probe_round", "seq": 1, "t": float(i)}])
        pattern = str(tmp_path / "part.*.jsonl")
        assert cli_main(["obs", "summary", pattern]) == 0
        assert "(3 total)" in capsys.readouterr().out

    def test_summary_glob_without_match_errors(self, tmp_path, capsys):
        assert cli_main(["obs", "summary",
                         str(tmp_path / "nope.*.jsonl")]) == 1
        assert "no files match" in capsys.readouterr().err

    def test_summary_allow_partial_forgives_chopped_tail(self, tmp_path,
                                                         capsys):
        path = write_jsonl(tmp_path / "t.jsonl",
                           [{"kind": "failover", "seq": 1, "t": 1.0},
                            {"kind": "failover", "seq": 2, "t": 2.0}])
        text = path.read_text()
        path.write_text(text[:-10])
        assert cli_main(["obs", "summary", str(path)]) == 1
        capsys.readouterr()
        assert cli_main(["obs", "summary", "--allow-partial",
                         str(path)]) == 0
        assert "failover" in capsys.readouterr().out


class TestProfileCli:
    def _trace(self, tmp_path):
        return write_jsonl(
            tmp_path / "prof.jsonl",
            [{"kind": "algo_step", "seq": 1, "t": 0.0, "step": "predict",
              "duration_ms": 4.0},
             {"kind": "algo_step", "seq": 2, "t": 0.0,
              "step": "algo1.path_control", "duration_ms": 6.0},
             {"kind": "control_epoch", "seq": 3, "t": 0.0,
              "duration_ms": 11.0,
              "top_pairs": [["FRA", "SIN", 30.0], ["SIN", "HGH", 10.0]]}])

    def test_profile_renders_phase_table(self, tmp_path, capsys):
        assert cli_main(["obs", "profile", str(self._trace(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "algo1.path_control" in out
        assert "(phases, top level)" in out
        assert "FRA->SIN" in out

    def test_profile_max_pairs_caps_attribution(self, tmp_path, capsys):
        assert cli_main(["obs", "profile", "--max-pairs", "1",
                         str(self._trace(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "1 more pairs" in out

    def test_profile_errors_without_spans(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "plain.jsonl",
                           [{"kind": "failover", "seq": 1, "t": 1.0}])
        assert cli_main(["obs", "profile", str(path)]) == 1
        assert "no algo_step" in capsys.readouterr().err
