"""Summary aggregation and the ``repro obs`` CLI."""

import pytest

from repro.cli import main as cli_main
from repro.obs.export import TELEMETRY_SCHEMA, TelemetryFile, write_jsonl
from repro.obs.summary import render, summarize

HEADER = {"record": "header", "schema": TELEMETRY_SCHEMA, "suite": "quick"}


def _doc(events=(), metrics=()):
    return TelemetryFile(header=dict(HEADER), events=list(events),
                         metrics=list(metrics))


class TestSummarize:
    def test_counts_kinds_and_time_ranges(self):
        doc = _doc(events=[
            {"record": "event", "kind": "probe_round", "t": 10.0},
            {"record": "event", "kind": "probe_round", "t": 50.0},
            {"record": "event", "kind": "rep_election"},
        ])
        s = summarize(doc)
        assert s.total_events == 3
        assert s.kind_counts == {"probe_round": 2, "rep_election": 1}
        assert s.kind_time_range["probe_round"] == [10.0, 50.0]
        assert "rep_election" not in s.kind_time_range
        assert not s.empty

    def test_experiment_breakdown(self):
        doc = _doc(events=[
            {"record": "event", "kind": "failover", "exp": "fig16"},
            {"record": "event", "kind": "failover", "exp": "fig16"},
            {"record": "event", "kind": "autoscale", "exp": "fig20"},
        ])
        assert summarize(doc).exp_counts == {"fig16": 2, "fig20": 1}

    def test_counters_sum_across_records(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "a": {"kind": "counter", "value": 2.0}}},
            {"record": "metrics", "metrics": {
                "a": {"kind": "counter", "value": 3.0}}},
        ])
        assert summarize(doc).metrics["a"]["value"] == 5.0

    def test_gauges_last_write_wins(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "g": {"kind": "gauge", "value": 1.0}}},
            {"record": "metrics", "metrics": {
                "g": {"kind": "gauge", "value": 9.0}}},
        ])
        assert summarize(doc).metrics["g"]["value"] == 9.0

    def test_histograms_merge_count_and_sum(self):
        doc = _doc(metrics=[
            {"record": "metrics", "metrics": {
                "h": {"kind": "histogram", "count": 2, "sum": 4.0,
                      "min": 1.0, "max": 3.0}}},
            {"record": "metrics", "metrics": {
                "h": {"kind": "histogram", "count": 1, "sum": 5.0,
                      "min": 5.0, "max": 5.0}}},
        ])
        merged = summarize(doc).metrics["h"]
        assert merged["count"] == 3
        assert merged["sum"] == 9.0
        assert merged["max"] == 5.0

    def test_empty_doc(self):
        assert summarize(_doc()).empty


class TestRender:
    def test_render_lists_kinds_by_count(self):
        doc = _doc(events=[
            {"record": "event", "kind": "probe_round", "t": 1.0},
            {"record": "event", "kind": "probe_round", "t": 2.0},
            {"record": "event", "kind": "failover", "t": 1.5},
        ], metrics=[{"record": "metrics", "metrics": {
            "c": {"kind": "counter", "value": 7.0}}}])
        text = "\n".join(render(summarize(doc)))
        assert "probe_round" in text
        assert "failover" in text
        assert text.index("probe_round") < text.index("failover")
        assert "c" in text and "counter" in text

    def test_metric_cap_is_reported(self):
        doc = _doc(metrics=[{"record": "metrics", "metrics": {
            f"m{i:02d}": {"kind": "counter", "value": 1.0}
            for i in range(5)}}])
        text = "\n".join(render(summarize(doc), max_metrics=2))
        assert "first 2 shown" in text
        assert "m04" not in text


class TestCli:
    def test_summary_renders_valid_file(self, tmp_path, capsys):
        path = write_jsonl(
            tmp_path / "t.jsonl",
            [{"kind": "failover", "seq": 1, "t": 3.0}],
            metrics={"c": {"kind": "counter", "value": 1.0}})
        assert cli_main(["obs", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "failover" in out

    def test_summary_rejects_missing_file(self, tmp_path, capsys):
        assert cli_main(["obs", "summary",
                         str(tmp_path / "absent.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_summary_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert cli_main(["obs", "summary", str(path)]) == 1

    def test_summary_rejects_empty_telemetry(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "empty.jsonl", [])
        assert cli_main(["obs", "summary", str(path)]) == 1
        assert "no events" in capsys.readouterr().err
