"""Telemetry capture through the experiment orchestrator."""

import pytest

from repro import obs
from repro.experiments import registry
from repro.experiments.export import write_manifest
from repro.experiments.orchestrator import (execute_one, rollup_records,
                                            run_parallel, run_sequential)
from repro.experiments.registry import ExperimentSpec
from repro.obs.export import read_jsonl, write_merged_jsonl

_MODULE = __name__


def fake_instrumented():
    """A fake experiment that exercises the telemetry hub directly."""
    tel = obs.telemetry()
    tel.counter("fake.widgets").inc(3)
    tel.event("failover", t=10.0, stream=1)
    return ["one output line"]


@pytest.fixture()
def instrumented_spec():
    spec = ExperimentSpec("__instrumented", _MODULE,
                          func="fake_instrumented")
    registry.register(spec)
    obs.disable()
    obs.reset()
    try:
        yield spec
    finally:
        registry.unregister(spec.name)
        obs.disable()
        obs.reset()


class TestExecuteOne:
    def test_without_telemetry_record_is_bare(self, instrumented_spec):
        record = execute_one("__instrumented")
        assert record.ok
        assert record.metrics is None and record.events is None
        assert "metrics" not in record.to_json()

    def test_with_telemetry_record_carries_capture(self, instrumented_spec):
        record = execute_one("__instrumented", telemetry=True)
        assert record.ok
        assert record.metrics["fake.widgets"]["value"] == 3
        assert record.events[0]["kind"] == "failover"
        # Events stay OUT of the manifest row; metrics go in.
        doc = record.to_json()
        assert "events" not in doc
        assert doc["metrics"]["fake.widgets"]["value"] == 3

    def test_output_lines_identical_either_way(self, instrumented_spec):
        plain = execute_one("__instrumented")
        traced = execute_one("__instrumented", telemetry=True)
        assert plain.lines == traced.lines


class TestSuite:
    def test_sequential_merged_telemetry(self, instrumented_spec,
                                         tmp_path):
        records = run_sequential(["__instrumented"], telemetry=True)
        path = write_merged_jsonl(
            tmp_path / "t.jsonl",
            [{"exp": r.name, "events": r.events or [],
              "metrics": r.metrics or {}} for r in records],
            meta={"suite": "quick"})
        doc = read_jsonl(path)
        assert doc.events_of("failover")[0]["exp"] == "__instrumented"
        assert doc.metrics[0]["metrics"]["fake.widgets"]["value"] == 3

    def test_parallel_capture_crosses_process_boundary(
            self, instrumented_spec):
        records = run_parallel(["__instrumented"], workers=2,
                               telemetry=True)
        (record,) = records
        assert record.ok
        assert record.metrics["fake.widgets"]["value"] == 3
        assert record.events[0]["kind"] == "failover"


class TestStreamingIsolation:
    """`capture()` must fence a live stream off from nested windows —
    including the forked pool workers that inherit the parent's open
    stream file handle."""

    def test_capture_window_never_writes_the_ambient_stream(
            self, instrumented_spec, tmp_path):
        hub = obs.enable()
        stream = hub.attach_stream(tmp_path / "ambient.jsonl")
        try:
            record = execute_one("__instrumented", telemetry=True)
            assert record.ok
            assert record.events[0]["kind"] == "failover"
        finally:
            hub.detach_stream(close=True)
        doc = read_jsonl(stream.paths[0])
        assert doc.events == []  # the experiment's events stayed out

    def test_parallel_workers_never_write_the_parent_stream(
            self, instrumented_spec, tmp_path):
        hub = obs.enable()
        stream = hub.attach_stream(tmp_path / "parent.jsonl")
        try:
            records = run_parallel(["__instrumented"] * 2, workers=2,
                                   telemetry=True)
            assert all(r.ok for r in records)
            assert all(r.events[0]["kind"] == "failover" for r in records)
            # The parent's stream still works after the pool ran.
            hub.event("autoscale", t=1.0)
        finally:
            hub.detach_stream(close=True)
        for path in stream.paths:
            kinds = [e["kind"] for e in read_jsonl(path).events]
            assert "failover" not in kinds
        assert any("autoscale" in [e["kind"] for e
                                   in read_jsonl(p).events]
                   for p in stream.paths)


class TestRollup:
    def test_rollup_aggregates_wall_and_retries(self, instrumented_spec):
        records = run_sequential(["__instrumented", "__instrumented"])
        records[1].retries = 2
        rollup = rollup_records(records)
        assert rollup["orchestrator.experiments"]["value"] == 2
        assert rollup["orchestrator.status.ok"]["value"] == 2
        assert rollup["orchestrator.retries"]["value"] == 2
        wall = rollup["orchestrator.experiment_wall_s"]
        assert wall["kind"] == "histogram" and wall["count"] == 2

    def test_manifest_gains_additive_keys(self, instrumented_spec,
                                          tmp_path):
        import json

        records = run_sequential(["__instrumented"], telemetry=True)
        path = write_manifest(records, tmp_path / "m.json",
                              rollup=rollup_records(records),
                              telemetry_path="t.jsonl")
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["telemetry"] == "t.jsonl"
        assert doc["rollup"]["orchestrator.experiments"]["value"] == 1
        # Backward compatibility: the original keys are all still there.
        for key in ("suite", "mode", "workers", "counts", "experiments"):
            assert key in doc
