"""Tracer and TraceEvent semantics."""

import enum
import json

import numpy as np
import pytest

from repro.obs.trace import KINDS, TraceEvent, Tracer


class TestRecord:
    def test_events_keep_order_and_sequence(self):
        tr = Tracer()
        tr.record("probe_round", t=1.0, region="FRA")
        tr.record("failover", t=2.0, stream=7)
        assert len(tr) == 2
        assert [e.seq for e in tr.events] == [1, 2]
        assert tr.events[0].fields["region"] == "FRA"

    def test_by_kind_and_kinds(self):
        tr = Tracer()
        tr.record("failover")
        tr.record("probe_round")
        tr.record("failover")
        assert len(tr.by_kind("failover")) == 2
        assert tr.kinds() == ["failover", "probe_round"]

    def test_bounded_buffer_counts_drops(self):
        tr = Tracer(max_events=3)
        for i in range(5):
            tr.record("probe_round", i=i)
        assert len(tr) == 3
        assert tr.dropped == 2
        # The sequence counter keeps advancing through drops.
        assert tr._seq == 5

    def test_reset(self):
        tr = Tracer(max_events=1)
        tr.record("a")
        tr.record("b")
        tr.reset()
        assert len(tr) == 0 and tr.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestSpan:
    def test_span_records_duration(self):
        tr = Tracer()
        with tr.span("algo_step", t=5.0, step="algo1"):
            pass
        (event,) = tr.events
        assert event.kind == "algo_step"
        assert event.fields["step"] == "algo1"
        assert event.fields["duration_ms"] >= 0.0

    def test_span_records_even_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("algo_step"):
                raise RuntimeError("boom")
        assert len(tr) == 1


class TestJson:
    def test_event_json_roundtrips(self):
        e = TraceEvent("failover", 12.5, 1, {"stream": 3, "planned": True})
        doc = json.loads(json.dumps(e.to_json()))
        assert doc == {"kind": "failover", "seq": 1, "t": 12.5,
                       "stream": 3, "planned": True}

    def test_none_time_is_omitted(self):
        doc = TraceEvent("autoscale", None, 1, {}).to_json()
        assert "t" not in doc

    def test_field_coercion(self):
        class Tier(enum.Enum):
            PREMIUM = "premium"

        tr = Tracer()
        tr.record("path_decision", t=np.float64(1.0),
                  tier=Tier.PREMIUM, count=np.int64(3),
                  hops=("FRA", "SIN"), extra=object())
        doc = tr.to_json()[0]
        json.dumps(doc)  # everything must be serialisable
        assert doc["tier"] == "premium"
        assert doc["count"] == 3
        assert doc["hops"] == ["FRA", "SIN"]
        assert isinstance(doc["extra"], str)

    def test_catalog_covers_builtin_instrumentation(self):
        # Sanity: the documented catalog holds the kinds this PR emits.
        for kind in ("probe_round", "rep_election", "path_decision",
                     "failover", "failback", "control_epoch", "algo_step",
                     "autoscale", "controller_outage"):
            assert kind in KINDS
