"""Tracer and TraceEvent semantics."""

import enum
import json

import numpy as np
import pytest

from repro.obs.trace import KINDS, TraceEvent, Tracer


class TestRecord:
    def test_events_keep_order_and_sequence(self):
        tr = Tracer()
        tr.record("probe_round", t=1.0, region="FRA")
        tr.record("failover", t=2.0, stream=7)
        assert len(tr) == 2
        assert [e.seq for e in tr.events] == [1, 2]
        assert tr.events[0].fields["region"] == "FRA"

    def test_by_kind_and_kinds(self):
        tr = Tracer()
        tr.record("failover")
        tr.record("probe_round")
        tr.record("failover")
        assert len(tr.by_kind("failover")) == 2
        assert tr.kinds() == ["failover", "probe_round"]

    def test_bounded_buffer_counts_drops(self):
        tr = Tracer(max_events=3)
        for i in range(5):
            tr.record("probe_round", i=i)
        assert len(tr) == 3
        assert tr.dropped == 2
        # The sequence counter keeps advancing through drops.
        assert tr._seq == 5

    def test_reset(self):
        tr = Tracer(max_events=1)
        tr.record("a")
        tr.record("b")
        tr.reset()
        assert len(tr) == 0 and tr.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestSpan:
    def test_span_records_duration(self):
        tr = Tracer()
        with tr.span("algo_step", t=5.0, step="algo1"):
            pass
        (event,) = tr.events
        assert event.kind == "algo_step"
        assert event.fields["step"] == "algo1"
        assert event.fields["duration_ms"] >= 0.0

    def test_span_records_even_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("algo_step"):
                raise RuntimeError("boom")
        assert len(tr) == 1


class TestSinks:
    def test_sinks_see_every_event_including_past_the_bound(self):
        tr = Tracer(max_events=2)
        seen = []
        tr.add_sink(seen.append)
        for i in range(5):
            tr.record("probe_round", i=i)
        assert len(tr) == 2 and tr.dropped == 3
        assert [e.fields["i"] for e in seen] == [0, 1, 2, 3, 4]

    def test_remove_sink_stops_delivery_and_tolerates_missing(self):
        tr = Tracer()
        seen = []
        tr.add_sink(seen.append)
        tr.record("a")
        tr.remove_sink(seen.append)
        tr.remove_sink(seen.append)  # already gone: no error
        tr.record("b")
        assert [e.kind for e in seen] == ["a"]

    def test_sinks_survive_reset(self):
        tr = Tracer()
        seen = []
        tr.add_sink(seen.append)
        tr.record("a")
        tr.reset()
        tr.record("b")
        assert [e.kind for e in seen] == ["a", "b"]

    def test_on_drop_hook_fires_per_dropped_event(self):
        tr = Tracer(max_events=1)
        drops = []
        tr.on_drop = lambda: drops.append(1)
        for __ in range(4):
            tr.record("x")
        assert len(drops) == 3

    def test_hub_counts_drops_as_a_metric(self):
        from repro.obs import Telemetry

        tel = Telemetry(enabled=True, max_events=3)
        for i in range(10):
            tel.event("probe_round", i=i)
        snap = tel.metrics.snapshot()
        assert snap["tracer.events_dropped"]["value"] == 7
        assert tel.tracer.dropped == 7


class TestJson:
    def test_event_json_roundtrips(self):
        e = TraceEvent("failover", 12.5, 1, {"stream": 3, "planned": True})
        doc = json.loads(json.dumps(e.to_json()))
        assert doc == {"kind": "failover", "seq": 1, "t": 12.5,
                       "stream": 3, "planned": True}

    def test_none_time_is_omitted(self):
        doc = TraceEvent("autoscale", None, 1, {}).to_json()
        assert "t" not in doc

    def test_field_coercion(self):
        class Tier(enum.Enum):
            PREMIUM = "premium"

        tr = Tracer()
        tr.record("path_decision", t=np.float64(1.0),
                  tier=Tier.PREMIUM, count=np.int64(3),
                  hops=("FRA", "SIN"), extra=object())
        doc = tr.to_json()[0]
        json.dumps(doc)  # everything must be serialisable
        assert doc["tier"] == "premium"
        assert doc["count"] == 3
        assert doc["hops"] == ["FRA", "SIN"]
        assert isinstance(doc["extra"], str)

    def test_catalog_covers_builtin_instrumentation(self):
        # Sanity: the documented catalog holds the kinds this PR emits.
        for kind in ("probe_round", "rep_election", "path_decision",
                     "failover", "failback", "control_epoch", "algo_step",
                     "autoscale", "controller_outage"):
            assert kind in KINDS
