"""Tests for the cost ledger."""

import numpy as np
import pytest

from repro.cost.accounting import (GB_PER_MBPS_SECOND, CostLedger,
                                   PairCostLedger)
from repro.underlay.config import PricingConfig
from repro.underlay.pricing import PricingModel
from repro.underlay.regions import default_regions


@pytest.fixture(scope="module")
def pricing():
    return PricingModel(default_regions(), PricingConfig(),
                        np.random.default_rng(3))


@pytest.fixture()
def ledger(pricing):
    return CostLedger(pricing)


def test_volume_conversion_constant():
    # 8000 Mbps for one second is one GB.
    assert 8000.0 * 1.0 * GB_PER_MBPS_SECOND == pytest.approx(1.0)


def test_internet_volume_accumulates(ledger):
    ledger.add_internet_traffic("HGH", 100.0, 80.0)
    ledger.add_internet_traffic("HGH", 100.0, 80.0)
    assert ledger.internet_gb() == pytest.approx(2.0)


def test_premium_volume_accumulates(ledger):
    ledger.add_premium_traffic("HGH", "SIN", 400.0, 20.0)
    assert ledger.premium_gb() == pytest.approx(1.0)


def test_premium_share(ledger):
    ledger.add_internet_traffic("HGH", 800.0, 10.0)
    ledger.add_premium_traffic("HGH", "SIN", 800.0, 10.0 / 3)
    assert ledger.premium_traffic_share() == pytest.approx(0.25)


def test_premium_share_empty_ledger(ledger):
    assert ledger.premium_traffic_share() == 0.0


def test_breakdown_prices_by_fee(ledger, pricing):
    ledger.add_internet_traffic("HGH", 8000.0, 1.0)   # 1 GB
    ledger.add_premium_traffic("HGH", "SIN", 8000.0, 1.0)
    b = ledger.breakdown()
    assert b.internet_cost == pytest.approx(pricing.internet_fee("HGH"))
    assert b.premium_cost == pytest.approx(pricing.premium_fee("HGH", "SIN"))
    assert b.network_cost == pytest.approx(b.internet_cost + b.premium_cost)


def test_container_hours_priced(ledger, pricing):
    ledger.add_container_hours("HGH", 10.0)
    b = ledger.breakdown()
    assert b.container_cost == pytest.approx(pricing.container_cost(10.0))
    assert b.total == pytest.approx(b.network_cost + b.container_cost)


def test_negative_values_rejected(ledger):
    with pytest.raises(ValueError):
        ledger.add_internet_traffic("HGH", -1.0, 1.0)
    with pytest.raises(ValueError):
        ledger.add_premium_traffic("HGH", "SIN", 1.0, -1.0)
    with pytest.raises(ValueError):
        ledger.add_container_hours("HGH", -0.1)


class TestPairCostLedger:
    def test_pair_attribution(self, pricing):
        ledger = PairCostLedger(pricing)
        pair = ("HGH", "SIN")
        ledger.add_internet_traffic_for_pair(pair, "HGH", 8000.0, 1.0)
        ledger.add_premium_traffic_for_pair(pair, "HGH", "SIN", 8000.0, 1.0)
        cost = ledger.pair_cost(pair)
        expected = (pricing.internet_fee("HGH")
                    + pricing.premium_fee("HGH", "SIN"))
        assert cost == pytest.approx(expected)

    def test_relay_hops_attributed_to_stream_pair(self, pricing):
        ledger = PairCostLedger(pricing)
        pair = ("HGH", "SIN")
        # Relay via FRA: two Internet hops, both billed to the pair.
        ledger.add_internet_traffic_for_pair(pair, "HGH", 8000.0, 1.0)
        ledger.add_internet_traffic_for_pair(pair, "FRA", 8000.0, 1.0)
        expected = pricing.internet_fee("HGH") + pricing.internet_fee("FRA")
        assert ledger.pair_cost(pair) == pytest.approx(expected)

    def test_pairs_kept_separate(self, pricing):
        ledger = PairCostLedger(pricing)
        ledger.add_internet_traffic_for_pair(("HGH", "SIN"), "HGH", 800.0,
                                             10.0)
        ledger.add_internet_traffic_for_pair(("SIN", "HGH"), "SIN", 800.0,
                                             10.0)
        costs = ledger.all_pair_costs()
        assert set(costs) == {("HGH", "SIN"), ("SIN", "HGH")}

    def test_totals_match_base_ledger_semantics(self, pricing):
        ledger = PairCostLedger(pricing)
        ledger.add_internet_traffic_for_pair(("HGH", "SIN"), "HGH", 8000.0,
                                             1.0)
        assert ledger.internet_gb() == pytest.approx(1.0)
