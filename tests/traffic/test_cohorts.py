"""Stream cohorts: aggregated session bundles for planet-scale SIBs."""

import numpy as np
import pytest

from repro.controlplane.model import ControlConfig
from repro.controlplane.pathcontrol import path_control
from repro.core.config import SimulationConfig
from repro.core.simulator import EpochSimulator
from repro.core.variants import xron
from repro.traffic.cohorts import CohortWorkload, StreamCohort
from repro.traffic.demand import DemandModel
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.streams import Stream, VIDEO_PROFILES
from repro.underlay.regions import default_regions
from repro.underlay.topology import build_underlay


@pytest.fixture(scope="module")
def matrix():
    demand = DemandModel(default_regions(), seed=3)
    return TrafficMatrix.from_model(demand, 8 * 3600.0)


def test_cohorts_are_streams(matrix):
    cohorts = CohortWorkload(seed=1).decompose(matrix)
    assert cohorts
    for c in cohorts:
        assert isinstance(c, Stream)
        assert isinstance(c, StreamCohort)
        assert c.demand_mbps > 0
        assert c.sessions > 0
        assert c.session_count >= 1


def test_decompose_is_deterministic_per_seed(matrix):
    a = CohortWorkload(seed=1).decompose(matrix)
    b = CohortWorkload(seed=1).decompose(matrix)
    assert [(c.src, c.dst, c.demand_mbps, c.sessions, c.components)
            for c in a] == \
           [(c.src, c.dst, c.demand_mbps, c.sessions, c.components)
            for c in b]
    c = CohortWorkload(seed=2).decompose(matrix)
    assert [(x.demand_mbps, x.components) for x in a] != \
           [(x.demand_mbps, x.components) for x in c]


def test_demand_is_conserved(matrix):
    w = CohortWorkload(seed=1, cohorts_per_pair=3)
    cohorts = w.decompose(matrix)
    total = sum(c.demand_mbps for c in cohorts)
    assert total == pytest.approx(matrix.total(), rel=1e-9)
    assert w.last_stats.dropped_pairs == 0
    assert w.last_stats.demand_mbps == pytest.approx(total)
    # Per-cohort: component demands sum to the cohort demand.
    for c in cohorts:
        assert sum(d for (__, __, d) in c.components) == \
            pytest.approx(c.demand_mbps, rel=1e-9)


def test_memory_is_bounded_by_pairs(matrix):
    n_pairs = sum(1 for __, d in matrix.items() if d > 0)
    for k in (1, 2, 4):
        cohorts = CohortWorkload(seed=1, cohorts_per_pair=k).decompose(matrix)
        assert len(cohorts) <= n_pairs * k


def test_min_pair_floor_accounts_dropped_demand(matrix):
    w = CohortWorkload(seed=1, min_pair_mbps=1e9)  # drop everything
    cohorts = w.decompose(matrix)
    assert cohorts == []
    assert w.last_stats.dropped_mbps == pytest.approx(matrix.total())
    assert w.last_stats.dropped_pairs == \
        sum(1 for __, d in matrix.items() if d > 0)


def test_expand_reconstructs_equivalent_sessions(matrix):
    w = CohortWorkload(seed=1)
    cohorts = w.decompose(matrix)[:40]
    sessions = w.expand(cohorts)
    assert sum(s.demand_mbps for s in sessions) == \
        pytest.approx(sum(c.demand_mbps for c in cohorts), rel=1e-9)
    rates = {p.bitrate_mbps for p in VIDEO_PROFILES}
    full = [s for s in sessions if s.demand_mbps in rates]
    assert len(full) > len(sessions) * 0.5  # mostly full-rate sessions


def test_expand_guards_against_planetary_blowup(matrix):
    w = CohortWorkload(seed=1)
    cohorts = w.decompose(matrix)
    with pytest.raises(ValueError, match="max_sessions"):
        w.expand(cohorts, max_sessions=10)


def test_export_import_round_trip(matrix):
    w = CohortWorkload(seed=1)
    w.decompose(matrix)
    state = w.export_state()
    fresh = CohortWorkload(seed=1)
    fresh.import_state(state)
    # Fresh ids continue after the imported counter, never reused.
    next_cohorts = fresh.decompose(matrix)
    assert min(c.stream_id for c in next_cohorts) == state["next_id"]


def test_validation():
    with pytest.raises(ValueError):
        CohortWorkload(cohorts_per_pair=0)
    with pytest.raises(ValueError):
        CohortWorkload(mix_jitter=1.5)
    with pytest.raises(ValueError):
        CohortWorkload(min_pair_mbps=-1.0)
    with pytest.raises(ValueError):
        StreamCohort(1, "A", "B", 1.0, VIDEO_PROFILES[0], sessions=-1.0)


def test_path_control_accepts_cohorts(matrix):
    u = build_underlay(seed=2)
    cohorts = CohortWorkload(seed=1).decompose(matrix)
    snap = u.snapshot(3600.0)
    result = path_control(cohorts, u.codes, snap, ControlConfig(),
                          gateways={c: 8 for c in u.codes}, fees=u.pricing)
    assert result.total_assigned_mbps() > 0


def test_epoch_simulator_runs_with_cohorts():
    u = build_underlay(seed=2)
    demand = DemandModel(default_regions(), seed=3)
    cfg = SimulationConfig(epoch_s=300.0, eval_step_s=60.0, seed=2,
                           stream_cohorts=True, cohorts_per_pair=2)
    result = EpochSimulator(u, demand, xron(), sim_config=cfg).run(
        start_s=0.0, duration_s=600.0)
    assert result.latency_ms.size > 0
    assert np.isfinite(result.latency_ms).any()
