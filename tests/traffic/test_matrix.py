"""Tests for traffic matrices."""

import numpy as np
import pytest

from repro.traffic.matrix import TrafficMatrix


@pytest.fixture()
def matrix():
    return TrafficMatrix(["A", "B", "C"],
                         {("A", "B"): 10.0, ("B", "A"): 5.0,
                          ("A", "C"): 2.0, ("C", "B"): 1.0})


def test_get_existing_and_missing(matrix):
    assert matrix.get("A", "B") == 10.0
    assert matrix.get("B", "C") == 0.0


def test_total(matrix):
    assert matrix.total() == pytest.approx(18.0)


def test_egress_ingress(matrix):
    assert matrix.egress("A") == pytest.approx(12.0)
    assert matrix.ingress("B") == pytest.approx(11.0)


def test_len_counts_entries(matrix):
    assert len(matrix) == 4


def test_items_sorted(matrix):
    keys = [k for k, __ in matrix.items()]
    assert keys == sorted(keys)


def test_as_array_layout(matrix):
    arr = matrix.as_array()
    assert arr.shape == (3, 3)
    assert arr[0, 1] == 10.0  # A -> B
    assert arr[1, 0] == 5.0
    assert np.all(np.diag(arr) == 0.0)


def test_scaled(matrix):
    doubled = matrix.scaled(2.0)
    assert doubled.get("A", "B") == 20.0
    assert matrix.get("A", "B") == 10.0  # original untouched


def test_scaled_rejects_negative(matrix):
    with pytest.raises(ValueError):
        matrix.scaled(-1.0)


def test_rejects_self_pair():
    with pytest.raises(ValueError):
        TrafficMatrix(["A"], {("A", "A"): 1.0})


def test_rejects_negative_demand():
    with pytest.raises(ValueError):
        TrafficMatrix(["A", "B"], {("A", "B"): -1.0})


def test_from_model_matches_rates(small_demand):
    t = 36000.0
    m = TrafficMatrix.from_model(small_demand, t)
    pair = small_demand.pairs[0]
    assert m.get(*pair) == pytest.approx(
        float(small_demand.rate_mbps(*pair, t)))


def test_from_model_scale(small_demand):
    m1 = TrafficMatrix.from_model(small_demand, 36000.0)
    m2 = TrafficMatrix.from_model(small_demand, 36000.0, scale=0.1)
    assert m2.total() == pytest.approx(m1.total() * 0.1)
