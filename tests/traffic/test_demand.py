"""Tests for the three-peak demand model."""

import numpy as np
import pytest

from repro.traffic.config import TrafficConfig
from repro.traffic.demand import DemandModel, three_peak_shape
from repro.underlay.regions import default_regions


class TestThreePeakShape:
    def test_peaks_at_configured_hours(self):
        cfg = TrafficConfig()
        h = np.linspace(0, 24, 2401)
        shape = three_peak_shape(h, cfg.peak_hours, cfg.peak_amps,
                                 cfg.peak_width_h)
        # Local maxima should be near 10, 16, 20.
        for peak in cfg.peak_hours:
            window = (h > peak - 0.5) & (h < peak + 0.5)
            assert shape[window].max() > 0.7 * max(cfg.peak_amps)

    def test_overnight_is_low(self):
        cfg = TrafficConfig()
        shape = three_peak_shape(np.array([3.0]), cfg.peak_hours,
                                 cfg.peak_amps, cfg.peak_width_h)
        assert shape[0] < 0.01

    def test_wraps_around_midnight(self):
        shape_a = three_peak_shape(np.array([23.9]), (0.1,), (1.0,), 1.0)
        shape_b = three_peak_shape(np.array([0.3]), (0.1,), (1.0,), 1.0)
        assert shape_a[0] > 0.9 and shape_b[0] > 0.9


class TestDemandModel:
    def test_rejects_single_region(self):
        with pytest.raises(ValueError):
            DemandModel(default_regions()[:1])

    def test_rates_positive(self, small_demand):
        t = np.arange(0, 86400, 300.0)
        for (a, b) in small_demand.pairs:
            assert np.all(small_demand.rate_mbps(a, b, t) > 0)

    def test_deterministic(self, small_regions):
        t = np.arange(0, 86400, 600.0)
        a = DemandModel(small_regions, seed=7)
        b = DemandModel(small_regions, seed=7)
        pair = a.pairs[0]
        np.testing.assert_array_equal(a.rate_mbps(*pair, t),
                                      b.rate_mbps(*pair, t))

    def test_seed_changes_rates(self, small_regions):
        t = np.arange(0, 86400, 600.0)
        a = DemandModel(small_regions, seed=7)
        b = DemandModel(small_regions, seed=8)
        pair = a.pairs[0]
        assert not np.allclose(a.rate_mbps(*pair, t), b.rate_mbps(*pair, t))

    def test_total_is_sum_of_pairs(self, small_demand):
        t = np.array([36000.0])
        total = small_demand.total_mbps(t)
        manual = sum(small_demand.rate_mbps(a, b, t)
                     for (a, b) in small_demand.pairs)
        np.testing.assert_allclose(total, manual)

    def test_pair_count(self, small_demand):
        n = len(small_demand.regions)
        assert len(small_demand.pairs) == n * (n - 1)

    def test_weekend_damped(self, small_demand):
        pair = small_demand.pairs[0]
        # Same time of day, weekday (day 2) vs weekend (day 5).
        weekday = float(small_demand.rate_mbps(*pair,
                                               2 * 86400.0 + 36000.0))
        weekend = float(small_demand.rate_mbps(*pair,
                                               5 * 86400.0 + 36000.0))
        assert weekend < weekday * 0.6

    def test_peak_trough_ratio_large(self):
        model = DemandModel(default_regions(), seed=3)
        t = np.arange(0, 86400, 60.0)
        total = model.total_mbps(t)
        assert total.max() / total.min() > 40  # paper: 145x

    def test_pair_peak_trough_ratio_larger(self):
        model = DemandModel(default_regions(), seed=3)
        t = np.arange(0, 86400, 60.0)
        pair = max(model.pairs, key=lambda p: model.pair_scale(*p))
        series = model.rate_mbps(*pair, t)
        assert series.max() / series.min() > 100  # paper: 247x

    def test_surges_jump_within_five_minutes(self):
        model = DemandModel(default_regions(), seed=3)
        t = np.arange(0, 86400, 300.0)
        jumps = []
        for (a, b) in model.pairs[:20]:
            series = model.rate_mbps(a, b, t)
            jumps.append(float(np.max(series[1:] / series[:-1])))
        assert max(jumps) > 2.0  # paper: 3.4x for the example pair

    def test_surges_recur_daily(self, small_demand):
        """The same weekday shows the surge at roughly the same time."""
        pair = small_demand.pairs[0]
        t_day1 = np.arange(0, 86400, 300.0)
        t_day2 = t_day1 + 86400.0
        d1 = small_demand.rate_mbps(*pair, t_day1)
        d2 = small_demand.rate_mbps(*pair, t_day2)
        # Correlated daily patterns (three peaks + recurring surges).
        corr = np.corrcoef(d1, d2)[0, 1]
        assert corr > 0.9

    def test_china_pairs_dominate(self):
        model = DemandModel(default_regions(), seed=3)
        heaviest = max(model.pairs, key=lambda p: model.pair_scale(*p))
        by_code = {r.code: r for r in model.regions}
        assert by_code[heaviest[0]].utc_offset == 8.0
        assert by_code[heaviest[1]].utc_offset == 8.0

    def test_noise_is_smooth_between_slots(self, small_demand):
        """Adjacent 5-minute slots do not jump tens of percent from noise."""
        pair = small_demand.pairs[0]
        # HGH/SIN overnight (UTC 17:00-21:00 is 01:00-05:00 local): the
        # diurnal shape is flat there, so noise dominates the series.
        t = np.arange(17 * 3600.0, 21 * 3600.0, 300.0)
        series = small_demand.rate_mbps(*pair, t)
        ratios = series[1:] / series[:-1]
        assert np.max(np.abs(np.log(ratios))) < 0.25

    def test_scale_lookup(self, small_demand):
        pair = small_demand.pairs[0]
        assert small_demand.pair_scale(*pair) > 0
