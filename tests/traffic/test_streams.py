"""Tests for the stream workload decomposition."""

import numpy as np
import pytest

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.streams import (Stream, StreamWorkload, VIDEO_PROFILES,
                                   VideoProfile)


@pytest.fixture()
def matrix():
    return TrafficMatrix(["A", "B", "C"],
                         {("A", "B"): 120.0, ("B", "A"): 30.0,
                          ("A", "C"): 0.0})


def test_stream_validation_self_pair():
    with pytest.raises(ValueError):
        Stream(1, "A", "A", 1.0, VIDEO_PROFILES[0])


def test_stream_validation_negative_demand():
    with pytest.raises(ValueError):
        Stream(1, "A", "B", -1.0, VIDEO_PROFILES[0])


def test_decompose_preserves_total_demand(matrix):
    workload = StreamWorkload(np.random.default_rng(1))
    streams = workload.decompose(matrix)
    assert sum(s.demand_mbps for s in streams) == pytest.approx(
        matrix.total())


def test_decompose_skips_zero_pairs(matrix):
    workload = StreamWorkload(np.random.default_rng(1))
    streams = workload.decompose(matrix)
    assert not any(s.src == "A" and s.dst == "C" for s in streams)


def test_decompose_respects_max_streams_per_pair(matrix):
    workload = StreamWorkload(np.random.default_rng(1),
                              max_streams_per_pair=2)
    streams = workload.decompose(matrix)
    per_pair = {}
    for s in streams:
        per_pair[(s.src, s.dst)] = per_pair.get((s.src, s.dst), 0) + 1
    assert max(per_pair.values()) <= 2


def test_decompose_ids_unique(matrix):
    workload = StreamWorkload(np.random.default_rng(1))
    streams = workload.decompose(matrix)
    ids = [s.stream_id for s in streams]
    assert len(set(ids)) == len(ids)


def test_ids_unique_across_epochs(matrix):
    workload = StreamWorkload(np.random.default_rng(1))
    first = workload.decompose(matrix)
    second = workload.decompose(matrix)
    ids = [s.stream_id for s in first + second]
    assert len(set(ids)) == len(ids)


def test_session_counts_positive(matrix):
    workload = StreamWorkload(np.random.default_rng(1))
    for s in workload.decompose(matrix):
        assert s.session_count >= 1


def test_profiles_drawn_from_catalogue(matrix):
    workload = StreamWorkload(np.random.default_rng(1))
    for s in workload.decompose(matrix):
        assert s.profile in VIDEO_PROFILES


def test_rejects_zero_max_streams():
    with pytest.raises(ValueError):
        StreamWorkload(max_streams_per_pair=0)


def test_session_statistics(matrix):
    workload = StreamWorkload(np.random.default_rng(1))
    streams = workload.decompose(matrix)
    stats = workload.session_statistics(streams)
    assert stats["streams"] == len(streams)
    assert stats["demand_mbps"] == pytest.approx(matrix.total())


def test_session_statistics_empty():
    workload = StreamWorkload()
    assert workload.session_statistics([])["streams"] == 0


def test_profile_catalogue_sane():
    assert all(isinstance(p, VideoProfile) for p in VIDEO_PROFILES)
    assert all(p.bitrate_mbps > 0 for p in VIDEO_PROFILES)
    assert abs(sum(p.weight for p in VIDEO_PROFILES) - 1.0) < 0.01
